//! Snapshot/restore contract: `restore(snapshot at tick k) +
//! replay(tail) == uninterrupted run`, bit for bit.
//!
//! A run is driven order by order (checks interleaved, as a daemon
//! would); at a proptest-chosen cut point the core and dispatcher are
//! serialized to JSON, dropped, parsed back, restored into a *freshly
//! constructed* dispatcher, and the tail replayed. Everything but the
//! wall-clock timing fields must equal the uninterrupted run — across
//! all three city profiles and the sequential/parallel engine.

use proptest::prelude::*;
use watter::prelude::*;
use watter::runner::{sim_config, watter_config};
use watter_core::{DispatchParallelism, Ts};
use watter_sim::DispatchCore;
use watter_strategy::OnlinePolicy;

fn scenario_for(pidx: usize, seed: u64, parallelism: DispatchParallelism) -> Scenario {
    let mut params = ScenarioParams::default_for(CityProfile::ALL[pidx]);
    params.n_orders = 120;
    params.n_workers = 12;
    params.city_side = 10;
    params.seed = seed;
    params.parallelism = parallelism;
    Scenario::build(params)
}

/// Drive the scenario through the core order by order. With `cut =
/// Some(t)`, snapshot when the first order releasing after `t` shows up,
/// JSON-round-trip the snapshot, restore into a fresh dispatcher and
/// continue from there.
fn drive(scenario: &Scenario, cut: Option<Ts>) -> (Measurements, Kpis) {
    use watter_sim::Event;
    let cfg = sim_config(scenario);
    let mut dispatcher = WatterDispatcher::new(watter_config(scenario), OnlinePolicy);
    let mut core = DispatchCore::new(scenario.workers.clone(), cfg);
    let mut pending_cut = cut;
    for order in scenario.orders.clone() {
        while !core.is_drained() && core.next_due().is_some_and(|due| due < order.release) {
            core.step(Event::Check, &mut dispatcher, scenario.oracle.as_ref());
        }
        if pending_cut.is_some_and(|t| order.release > t) {
            pending_cut = None;
            let snap = core.snapshot(&dispatcher);
            let json = serde_json::to_string(&snap).expect("serialize snapshot");
            drop((core, dispatcher));
            let snap: DispatchSnapshot = serde_json::from_str(&json).expect("parse snapshot");
            dispatcher = WatterDispatcher::new(watter_config(scenario), OnlinePolicy);
            core = DispatchCore::restore(&snap, &mut dispatcher).expect("restore snapshot");
        }
        core.step(
            Event::Arrive(order),
            &mut dispatcher,
            scenario.oracle.as_ref(),
        );
    }
    core.step(Event::Close, &mut dispatcher, scenario.oracle.as_ref());
    while !core.is_drained() {
        core.step(Event::Check, &mut dispatcher, scenario.oracle.as_ref());
    }
    core.finish()
}

proptest! {
    // Each case simulates the scenario twice; keep case count modest.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Snapshot at a random point of the run, restore, replay the tail:
    /// bit-identical to the uninterrupted run on every profile, for the
    /// sequential and parallel engine.
    #[test]
    fn restore_plus_replay_equals_uninterrupted_run(
        pidx in 0usize..3,
        seed in 0u64..1_000,
        frac in 0.1f64..0.9,
        tidx in 0usize..2,
    ) {
        let threads = [1usize, 4][tidx];
        let scenario = scenario_for(pidx, seed, DispatchParallelism { threads, shards: threads });
        let (first, last) = (
            scenario.orders.first().map(|o| o.release).unwrap_or(0),
            scenario.orders.last().map(|o| o.release).unwrap_or(0),
        );
        let cut = first + ((last - first) as f64 * frac) as Ts;

        let (m_ref, k_ref) = drive(&scenario, None);
        prop_assert!(m_ref.served_orders > 0, "degenerate scenario");
        let (m_cut, k_cut) = drive(&scenario, Some(cut));

        prop_assert_eq!(m_cut.without_timing(), m_ref.without_timing());
        prop_assert_eq!(k_cut.without_timing(), k_ref.without_timing());
    }
}

/// Drive the scenario with the trace journal on. With `cut = Some(t)`
/// the run is snapshotted mid-stream and the first recorder is drained
/// and *abandoned with the dying process state* — the restored half
/// attaches a fresh recorder, exactly like a crash-recovered daemon.
/// Returns the concatenated journal (first half ++ second half).
fn drive_traced(scenario: &Scenario, cut: Option<Ts>) -> Vec<TraceRecord> {
    use watter_sim::Event;
    let cfg = sim_config(scenario);
    let mut recorder = Recorder::enabled();
    let mut records = Vec::new();
    let mut dispatcher = WatterDispatcher::new(watter_config(scenario), OnlinePolicy);
    dispatcher.set_recorder(recorder.clone());
    let mut core = DispatchCore::new(scenario.workers.clone(), cfg);
    core.set_recorder(recorder.clone());
    let mut pending_cut = cut;
    for order in scenario.orders.clone() {
        while !core.is_drained() && core.next_due().is_some_and(|due| due < order.release) {
            core.step(Event::Check, &mut dispatcher, scenario.oracle.as_ref());
        }
        if pending_cut.is_some_and(|t| order.release > t) {
            pending_cut = None;
            let snap = core.snapshot(&dispatcher);
            let json = serde_json::to_string(&snap).expect("serialize snapshot");
            records.extend(recorder.drain_trace());
            drop((core, dispatcher, recorder));
            let snap: DispatchSnapshot = serde_json::from_str(&json).expect("parse snapshot");
            recorder = Recorder::enabled();
            dispatcher = WatterDispatcher::new(watter_config(scenario), OnlinePolicy);
            dispatcher.set_recorder(recorder.clone());
            core = DispatchCore::restore(&snap, &mut dispatcher).expect("restore snapshot");
            // Attach after restore: the snapshot carries the journal's
            // next sequence number and the fresh recorder resumes from
            // it instead of renumbering from zero.
            core.set_recorder(recorder.clone());
        }
        core.step(
            Event::Arrive(order),
            &mut dispatcher,
            scenario.oracle.as_ref(),
        );
    }
    core.step(Event::Close, &mut dispatcher, scenario.oracle.as_ref());
    while !core.is_drained() {
        core.step(Event::Check, &mut dispatcher, scenario.oracle.as_ref());
    }
    records.extend(recorder.drain_trace());
    records
}

/// The trace-journal recovery contract: sequence numbers survive the
/// snapshot → restore → replay cycle even when the restored half runs
/// on a *fresh* recorder, and the stitched journal is bit-identical to
/// an uninterrupted run's (trace stamps are virtual time, so nothing
/// needs stripping).
#[test]
fn trace_seq_continues_across_snapshot_restore() {
    let scenario = scenario_for(0, 7, DispatchParallelism::SEQUENTIAL);
    let (first, last) = (
        scenario.orders.first().map(|o| o.release).unwrap_or(0),
        scenario.orders.last().map(|o| o.release).unwrap_or(0),
    );
    let cut = first + (last - first) / 2;

    let reference = drive_traced(&scenario, None);
    assert!(!reference.is_empty(), "degenerate scenario");
    let stitched = drive_traced(&scenario, Some(cut));

    // Contiguous numbering from zero — the fresh recorder picked up
    // where the abandoned one stopped, with no gap and no restart.
    for (i, rec) in stitched.iter().enumerate() {
        assert_eq!(rec.seq, i as u64, "gap or renumbering at {i}: {rec:?}");
    }
    assert_eq!(stitched, reference);
}

/// A snapshot taken from one dispatcher kind must refuse to load into
/// another.
#[test]
fn snapshot_refuses_mismatched_dispatcher() {
    use watter_baselines::NonSharingDispatcher;
    use watter_sim::{Event, SnapshotDispatcher};

    let scenario = scenario_for(1, 3, DispatchParallelism::SEQUENTIAL);
    let cfg = sim_config(&scenario);
    let mut d = NonSharingDispatcher::new();
    let mut core = DispatchCore::new(scenario.workers.clone(), cfg);
    for order in scenario.orders.iter().take(10).cloned() {
        core.step(Event::Arrive(order), &mut d, scenario.oracle.as_ref());
    }
    core.step(Event::Check, &mut d, scenario.oracle.as_ref());
    let snap = core.snapshot(&d);
    assert!(matches!(
        snap.dispatcher,
        watter_sim::DispatcherState::Queue { .. }
    ));

    let mut watter = WatterDispatcher::new(watter_config(&scenario), OnlinePolicy);
    assert!(watter.load_state(&snap.dispatcher).is_err());
}
