//! Subprocess smoke tests for the `watter-cli` binary: the entry points
//! users actually invoke must keep working, not just the library APIs they
//! wrap. Everything runs at tiny scale so the suite stays fast.

use std::path::PathBuf;
use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_watter-cli"))
}

fn temp_path(name: &str) -> PathBuf {
    // Per-process directory so concurrent test invocations (parallel CI
    // jobs on one runner) can't race on the same file names.
    let dir = std::env::temp_dir().join(format!("watter_cli_smoke_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir.join(name)
}

#[test]
fn run_subcommand_reports_stats_and_writes_json() {
    let json = temp_path("run_stats.json");
    let out = cli()
        .args([
            "run",
            "--orders",
            "40",
            "--workers",
            "8",
            "--algo",
            "online",
            "--seed",
            "7",
            "--json",
        ])
        .arg(&json)
        .output()
        .expect("spawn watter-cli");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "watter-cli run failed: {}{}",
        stdout,
        String::from_utf8_lossy(&out.stderr)
    );
    for marker in ["profile", "service rate", "extra time", "mean group"] {
        assert!(stdout.contains(marker), "missing `{marker}` in:\n{stdout}");
    }

    // The --json sidecar must be valid and carry the printed stats.
    let body = std::fs::read_to_string(&json).expect("json sidecar written");
    let stats: watter_core::RunStats = serde_json::from_str(&body).expect("valid RunStats json");
    assert!(stats.service_rate_pct > 0.0 && stats.service_rate_pct <= 100.0);
    assert!(stats.extra_time >= 0.0);
    std::fs::remove_file(&json).ok();
}

#[test]
fn run_subcommand_is_deterministic_across_processes() {
    let run = || {
        let out = cli()
            .args([
                "run",
                "--orders",
                "40",
                "--workers",
                "8",
                "--algo",
                "gdp",
                "--seed",
                "11",
            ])
            .output()
            .expect("spawn watter-cli");
        assert!(out.status.success());
        let text = String::from_utf8_lossy(&out.stdout).to_string();
        // Drop the wall-clock line; it is the one legitimately varying row.
        text.lines()
            .filter(|l| !l.starts_with("running time"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(run(), run(), "identical seeds must print identical stats");
}

#[test]
fn cost_cache_flag_does_not_change_outcomes() {
    // `--cost-cache` wraps the oracle in the memoization layer; dispatch
    // outcomes must be bit-identical to the uncached run (only the
    // wall-clock "running time" row may differ).
    let run = |cache: bool| {
        let mut args = vec![
            "run",
            "--orders",
            "60",
            "--workers",
            "10",
            "--algo",
            "online",
            "--seed",
            "19",
        ];
        if cache {
            args.push("--cost-cache");
        }
        let out = cli().args(&args).output().expect("spawn watter-cli");
        assert!(out.status.success());
        let text = String::from_utf8_lossy(&out.stdout).to_string();
        assert_eq!(
            text.contains("+cache"),
            cache,
            "oracle line must reflect the cache flag:\n{text}"
        );
        text.lines()
            .filter(|l| !l.starts_with("running time") && !l.starts_with("oracle"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(
        run(false),
        run(true),
        "--cost-cache changed dispatch outcomes"
    );
}

#[test]
fn train_subcommand_saves_loadable_model() {
    let model = temp_path("model_smoke.json");
    let out = cli()
        .args([
            "train",
            "--orders",
            "40",
            "--workers",
            "8",
            "--steps",
            "5",
            "--out",
        ])
        .arg(&model)
        .output()
        .expect("spawn watter-cli");
    assert!(
        out.status.success(),
        "watter-cli train failed: {}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let reloaded = watter_learn::ValueFunction::load_json(&model);
    assert!(reloaded.is_ok(), "saved model must reload: {reloaded:?}");
    std::fs::remove_file(&model).ok();
}

#[test]
fn unknown_usage_exits_nonzero() {
    let out = cli().output().expect("spawn watter-cli");
    assert!(
        !out.status.success(),
        "bare invocation must fail with usage"
    );
    let out = cli()
        .args(["run", "--algo", "definitely-not-an-algo"])
        .output()
        .expect("spawn watter-cli");
    assert!(!out.status.success(), "unknown algo must be rejected");
}
