//! Query-acceleration equivalence properties.
//!
//! PR 3's speed layers (memoized oracle, bound-guided pre-filter, spatial
//! insert pruning) are *exact* accelerations: they must never change a
//! single answer, admission or dispatch outcome — only latency. These
//! properties pin that guarantee across all city profiles:
//!
//! 1. `CachedOracle` is bit-identical to its inner oracle under arbitrary
//!    query sequences, at any capacity (constant eviction included);
//! 2. the bound-guided `pair_prefilter` admits exactly the pairs the
//!    exact-only filter admits (the landmark bound is admissible);
//! 3. spatially pruned `ShareGraph` inserts produce the same edge sets as
//!    the full scan under random order streams with removals;
//! 4. end-to-end dispatch outcomes are identical across every
//!    acceleration configuration.

use proptest::prelude::*;
use std::sync::Arc;
use watter::prelude::*;
use watter_core::{NodeId, Order, OrderId, TravelBound, Ts};
use watter_pool::{pair_prefilter, PlanLimits, ShareGraph, SpatialPrune};
use watter_road::{AltOracle, CachedOracle};

fn profile(idx: usize) -> CityProfile {
    CityProfile::ALL[idx % CityProfile::ALL.len()]
}

/// The pre-PR 3 shareability pre-filter: exact oracle queries only. The
/// bound-guided filter must agree with this bit for bit.
fn exact_prefilter<C: TravelCost>(a: &Order, b: &Order, now: Ts, oracle: &C) -> bool {
    let a_solo = now + a.direct_cost < a.deadline;
    let b_solo = now + b.direct_cost < b.deadline;
    (a_solo && now + oracle.cost(a.pickup, b.pickup) + b.direct_cost < b.deadline)
        || (b_solo && now + oracle.cost(b.pickup, a.pickup) + a.direct_cost < a.deadline)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Cached answers are the inner oracle's answers verbatim for any
    /// query sequence and any capacity, and bounds pass through untouched.
    #[test]
    fn cached_oracle_is_bit_identical(
        pidx in 0usize..3,
        side in 5usize..10,
        seed in 0u64..300,
        capacity in 1usize..512,
        queries in prop::collection::vec((0u32..10_000, 0u32..10_000), 1..200),
    ) {
        let graph = Arc::new(profile(pidx).city_config(side).generate(seed));
        let dense = CostMatrix::build(&graph);
        let alt = AltOracle::build(Arc::clone(&graph), 4);
        let cached = CachedOracle::new(&alt, capacity);
        let n = graph.node_count() as u32;
        for (a, b) in queries {
            let (a, b) = (NodeId(a % n), NodeId(b % n));
            prop_assert_eq!(cached.cost(a, b), dense.cost(a, b), "cost {} -> {}", a, b);
            prop_assert_eq!(
                cached.lower_bound(a, b),
                alt.lower_bound(a, b),
                "bound {} -> {}", a, b
            );
        }
    }

    /// The bound-guided pre-filter never drops a pair the exact filter
    /// admits (admissibility) nor admits one it rejects — on the ALT
    /// oracle (real landmark bounds) and the dense table (bound == cost).
    #[test]
    fn bound_guided_prefilter_matches_exact_filter(
        pidx in 0usize..3,
        side in 5usize..10,
        seed in 0u64..300,
        landmarks in 1usize..6,
        specs in prop::collection::vec((0u32..10_000, 0u32..10_000, 1i64..4, 0i64..60), 2..16),
        now in 0i64..40,
    ) {
        let graph = Arc::new(profile(pidx).city_config(side).generate(seed));
        let dense = CostMatrix::build(&graph);
        let alt = AltOracle::build(Arc::clone(&graph), landmarks);
        let n = graph.node_count() as u32;
        let orders: Vec<Order> = specs
            .iter()
            .enumerate()
            .filter_map(|(i, &(p, d, scale, jitter))| {
                let p = NodeId(p % n);
                let d = NodeId(d % n);
                let direct = dense.cost(p, d);
                if p == d || direct >= watter_road::dijkstra::UNREACHABLE {
                    return None; // degenerate or disconnected trip
                }
                Some(Order {
                    id: OrderId(i as u32),
                    pickup: p,
                    dropoff: d,
                    riders: 1,
                    release: 0,
                    deadline: scale * direct + jitter,
                    wait_limit: direct,
                    direct_cost: direct,
                })
            })
            .collect();
        for (i, a) in orders.iter().enumerate() {
            for b in &orders[i + 1..] {
                let want = exact_prefilter(a, b, now, &dense);
                prop_assert_eq!(
                    pair_prefilter(a, b, now, &alt), want,
                    "ALT-bounded filter diverges for ({}, {})", a.id, b.id
                );
                prop_assert_eq!(
                    pair_prefilter(a, b, now, &dense), want,
                    "dense-bounded filter diverges for ({}, {})", a.id, b.id
                );
            }
        }
    }

    /// Spatially pruned inserts build the same shareability graph as the
    /// full scan under random arrival/removal streams.
    #[test]
    fn spatial_insert_equals_full_scan(
        pidx in 0usize..3,
        side in 6usize..11,
        seed in 0u64..300,
        grid_dim in 2usize..8,
        specs in prop::collection::vec((0u32..10_000, 0u32..10_000, 1i64..4, 0i64..40, 0u8..8), 4..40),
    ) {
        let graph = Arc::new(profile(pidx).city_config(side).generate(seed));
        let oracle = CostMatrix::build(&graph);
        let spatial = SpatialPrune::for_graph(&graph, GridIndex::build(&graph, grid_dim));
        let limits = PlanLimits { capacity: 4 };
        let mut full = ShareGraph::new();
        let mut pruned = ShareGraph::with_spatial(spatial);
        let n = graph.node_count() as u32;
        let mut now = 0;
        for (i, &(p, d, scale, jitter, action)) in specs.iter().enumerate() {
            let p = NodeId(p % n);
            let d = NodeId(d % n);
            let direct = oracle.cost(p, d);
            if p == d || direct >= watter_road::dijkstra::UNREACHABLE {
                continue;
            }
            now += 5;
            let o = Order {
                id: OrderId(i as u32),
                pickup: p,
                dropoff: d,
                riders: 1,
                release: now,
                deadline: now + scale * direct + jitter,
                wait_limit: direct,
                direct_cost: direct,
            };
            let a = full.insert(o.clone(), now, limits, &oracle);
            let b = pruned.insert(o, now, limits, &oracle);
            prop_assert_eq!(a, b, "insert {}: neighbour sets diverge", i);
            if action == 0 && i > 0 {
                let victim = OrderId((i / 2) as u32);
                prop_assert_eq!(full.remove(victim), pruned.remove(victim));
            }
        }
        prop_assert_eq!(full.edge_count(), pruned.edge_count());
        for id in full.order_ids() {
            let fe: Vec<_> = full.neighbors(id).collect();
            let pe: Vec<_> = pruned.neighbors(id).collect();
            prop_assert_eq!(fe, pe, "adjacency of {} diverges", id);
        }
    }
}

/// Regression: spatial pruning at the city border. `GridIndex::build`
/// clamps coordinates into the outermost cells, and `ring_search` from an
/// edge or corner cell visits only the in-grid part of each square ring —
/// a bug in either (skipping clamped border cells, or stopping before the
/// far corner's ring) would silently drop shareable partners for orders
/// at the map margin. Pin full-scan/pruned equality on a stream placed
/// entirely in corner and edge cells, with slacks generous enough that
/// every partial ring out to the opposite corner must be scanned.
#[test]
fn spatial_prune_covers_clamped_border_cells() {
    let side = 12usize;
    for (pidx, grid_dim) in [(0usize, 6usize), (1, 8), (2, 12)] {
        let graph = Arc::new(profile(pidx).city_config(side).generate(97));
        let oracle = CostMatrix::build(&graph);
        let grid = GridIndex::build(&graph, grid_dim);
        let spatial = SpatialPrune::for_graph(&graph, grid.clone());
        let limits = PlanLimits { capacity: 4 };
        let n = graph.node_count() as u32;
        let last_row = (side - 1) as u32 * side as u32;
        // Row-major city: the four corners, edge midpoints and one center
        // node. Corner pick-ups straddle the grid's clamped border cells.
        let spots = [
            0,
            side as u32 - 1,
            last_row,
            n - 1,
            side as u32 / 2,
            last_row + side as u32 / 2,
            (side as u32 / 2) * side as u32,
            (side as u32 / 2) * side as u32 + side as u32 - 1,
            (side as u32 / 2) * side as u32 + side as u32 / 2,
        ];
        let mut full = ShareGraph::new();
        let mut pruned = ShareGraph::with_spatial(spatial);
        let now = 0;
        let mut id = 0u32;
        for &p in &spots {
            for &d in &spots {
                let (p, d) = (NodeId(p), NodeId(d));
                let direct = oracle.cost(p, d);
                if p == d || direct >= watter_road::dijkstra::UNREACHABLE {
                    continue;
                }
                let o = Order {
                    id: OrderId(id),
                    pickup: p,
                    dropoff: d,
                    riders: 1,
                    release: now,
                    // Slack spans the whole city: corner-to-corner pairs
                    // stay shareable, so pruning must reach the far rings.
                    deadline: now + 6 * direct + 3_600,
                    wait_limit: 2 * direct,
                    direct_cost: direct,
                };
                id += 1;
                let a = full.insert(o.clone(), now, limits, &oracle);
                let b = pruned.insert(o, now, limits, &oracle);
                assert_eq!(
                    a, b,
                    "grid_dim {grid_dim}: neighbour sets diverge for order at ({p}, {d})"
                );
            }
        }
        assert!(
            full.edge_count() > 0,
            "border stream produced no shareable pairs — test is inert"
        );
        assert_eq!(full.edge_count(), pruned.edge_count());
        for oid in full.order_ids() {
            let fe: Vec<_> = full.neighbors(oid).collect();
            let pe: Vec<_> = pruned.neighbors(oid).collect();
            assert_eq!(fe, pe, "grid_dim {grid_dim}: adjacency of {oid} diverges");
        }
    }
}

/// End-to-end: every acceleration configuration (full scan / spatial /
/// spatial + cached oracle) produces the same dispatch outcomes on the
/// same scenario — the layers change latency, never results.
#[test]
fn acceleration_layers_do_not_change_dispatch_outcomes() {
    use watter::runner::{sim_config, watter_config};
    use watter_sim::run;
    use watter_strategy::OnlinePolicy;

    for (profile, seed) in [
        (CityProfile::Chengdu, 11u64),
        (CityProfile::Nyc, 23),
        (CityProfile::Xian, 37),
    ] {
        let mut params = ScenarioParams::default_for(profile);
        params.n_orders = 150;
        params.n_workers = 15;
        params.city_side = 12;
        params.seed = seed;
        let scenario = Scenario::build(params);

        let mut outcomes = Vec::new();
        for (tag, spatial, cache) in [
            ("full-scan", false, false),
            ("spatial", true, false),
            ("spatial+cache", true, true),
        ] {
            let cached =
                cache.then(|| CachedOracle::with_default_capacity(Arc::clone(&scenario.oracle)));
            let oracle: &dyn TravelBound = match &cached {
                Some(c) => c,
                None => scenario.oracle.as_ref(),
            };
            let mut wcfg = watter_config(&scenario);
            if !spatial {
                wcfg.spatial = None;
            }
            let mut d = WatterDispatcher::new(wcfg, OnlinePolicy);
            let m = run(
                scenario.orders.clone(),
                scenario.workers.clone(),
                &mut d,
                oracle,
                sim_config(&scenario),
            );
            if let Some(c) = &cached {
                assert!(c.hits() > 0, "cache never hit — the layer is inert");
            }
            outcomes.push((
                tag,
                m.served_orders,
                m.rejected_orders,
                m.extra_time().to_bits(),
                m.unified_cost().to_bits(),
                m.mean_group_size().to_bits(),
            ));
        }
        let (_, s0, r0, e0, u0, g0) = outcomes[0];
        for &(tag, s, r, e, u, g) in &outcomes[1..] {
            assert_eq!(
                (s, r, e, u, g),
                (s0, r0, e0, u0, g0),
                "{profile:?}: config `{tag}` changed dispatch outcomes"
            );
        }
    }
}
