//! End-to-end integration tests over the full stack: workload generation →
//! simulation → all dispatchers → measurements, plus the offline training
//! pipeline.

use std::sync::Arc;
use watter::prelude::*;
use watter::runner::{run_algorithm, run_measured, Algo};

fn small_scenario() -> Scenario {
    let mut p = ScenarioParams::default_for(CityProfile::Chengdu);
    p.n_orders = 250;
    p.n_workers = 40;
    p.city_side = 12;
    Scenario::build(p)
}

#[test]
fn every_algorithm_resolves_every_order() {
    let s = small_scenario();
    for algo in [
        Algo::Gdp,
        Algo::Gas,
        Algo::NonSharing,
        Algo::WatterOnline,
        Algo::WatterTimeout,
        Algo::WatterConstant(150.0),
    ] {
        let name = algo.name();
        let m = run_measured(&s, algo);
        assert_eq!(
            m.total_orders,
            s.orders.len() as u64,
            "{name}: every order must reach a terminal outcome"
        );
        assert_eq!(m.served_orders + m.rejected_orders, m.total_orders);
        assert!(m.extra_time() >= 0.0);
        assert!(m.unified_cost() >= 0.0);
    }
}

#[test]
fn watter_groups_orders_while_nonsharing_does_not() {
    let s = small_scenario();
    let watter = run_measured(&s, Algo::WatterOnline);
    let solo = run_measured(&s, Algo::NonSharing);
    assert!(watter.mean_group_size() > 1.2, "pooling must form groups");
    assert_eq!(solo.mean_group_size(), 1.0);
    assert!(
        watter.served_orders > solo.served_orders,
        "sharing must raise throughput under pressure"
    );
}

#[test]
fn runs_are_deterministic() {
    let s = small_scenario();
    let a = run_algorithm(&s, Algo::WatterOnline);
    let b = run_algorithm(&s, Algo::WatterOnline);
    assert_eq!(a.extra_time, b.extra_time);
    assert_eq!(a.unified_cost, b.unified_cost);
    assert_eq!(a.service_rate_pct, b.service_rate_pct);
}

#[test]
fn workload_generation_is_deterministic() {
    // Rebuilding from identical params must reproduce the exact same
    // orders, workers and simulation outcome: everything downstream of
    // `ScenarioParams::seed` is seeded explicitly, and all pool/dispatch
    // iteration happens over ordered containers.
    let s1 = small_scenario();
    let s2 = small_scenario();
    assert_eq!(s1.orders, s2.orders, "order stream must be seed-determined");
    assert_eq!(s1.workers, s2.workers, "fleet must be seed-determined");
    let a = run_algorithm(&s1, Algo::WatterOnline);
    let b = run_algorithm(&s2, Algo::WatterOnline);
    assert_eq!(a.extra_time, b.extra_time);
    assert_eq!(a.unified_cost, b.unified_cost);
    assert_eq!(a.service_rate_pct, b.service_rate_pct);
    assert_eq!(a.mean_group_size, b.mean_group_size);

    // A different seed must actually change the workload. Derive the
    // params from s1 so this stays honest if small_scenario() is retuned.
    let mut p = s1.params.clone();
    p.seed ^= 0x5EED;
    let s3 = Scenario::build(p);
    assert_ne!(s1.orders, s3.orders, "seed must drive workload generation");
}

#[test]
fn served_extra_time_never_exceeds_penalty() {
    // Section V-B: t_e ≤ p holds for every served order, so the objective
    // of any dispatcher is bounded by rejecting everything.
    let s = small_scenario();
    let all_rejected: f64 = s.orders.iter().map(|o| o.penalty() as f64).sum();
    for algo in [Algo::WatterOnline, Algo::WatterTimeout, Algo::Gas] {
        let name = algo.name();
        let m = run_measured(&s, algo);
        assert!(
            m.extra_time() <= all_rejected + 1e-6,
            "{name}: Φ = {} exceeds the all-rejected bound {all_rejected}",
            m.extra_time()
        );
    }
}

#[test]
fn training_pipeline_produces_usable_value_function() {
    let mut p = ScenarioParams::default_for(CityProfile::Chengdu);
    p.n_orders = 200;
    p.n_workers = 30;
    p.city_side = 12;
    let mut tp = p.clone();
    tp.seed ^= 0xDEAD_BEEF;
    let training = Scenario::build(tp);
    let cfg = TrainingConfig {
        train_steps: 100,
        ..TrainingConfig::default()
    };
    let trained = train(&training, &cfg);
    assert!(trained.history_len > 0, "phase 1 must collect history");
    assert!(trained.transitions > 0, "phase 3 must record transitions");
    assert!(!trained.losses.is_empty(), "phase 4 must train");
    assert!(!trained.gmm.components().is_empty());

    // The trained model must run and resolve everything on the eval day.
    let eval = Scenario::build(p);
    let stats = run_algorithm(&eval, Algo::WatterExpectValue(Arc::new(trained.value)));
    assert!(stats.service_rate_pct > 0.0);
}

#[test]
fn timeout_policy_waits_longer_than_online() {
    let s = small_scenario();
    let online = run_measured(&s, Algo::WatterOnline);
    let timeout = run_measured(&s, Algo::WatterTimeout);
    let mean_resp = |m: &Measurements| m.total_response / m.served_orders.max(1) as f64;
    assert!(
        mean_resp(&timeout) > mean_resp(&online),
        "timeout responses {} must exceed online {}",
        mean_resp(&timeout),
        mean_resp(&online)
    );
}

#[test]
fn more_workers_never_hurt_service() {
    let mut p = ScenarioParams::default_for(CityProfile::Chengdu);
    p.n_orders = 250;
    p.city_side = 12;
    p.n_workers = 20;
    let scarce = run_algorithm(&Scenario::build(p.clone()), Algo::WatterOnline);
    p.n_workers = 80;
    let ample = run_algorithm(&Scenario::build(p), Algo::WatterOnline);
    assert!(ample.service_rate_pct >= scarce.service_rate_pct);
    assert!(ample.extra_time <= scarce.extra_time);
}

#[test]
fn value_function_persists_and_reloads() {
    let mut p = ScenarioParams::default_for(CityProfile::Chengdu);
    p.n_orders = 150;
    p.n_workers = 25;
    p.city_side = 12;
    p.seed ^= 0xDEAD_BEEF;
    let cfg = TrainingConfig {
        train_steps: 50,
        ..TrainingConfig::default()
    };
    let trained = train(&Scenario::build(p), &cfg);

    let dir = std::env::temp_dir().join("watter_model_test");
    let path = dir.join("model.json");
    trained.value.save_json(&path).expect("save");
    let reloaded = ValueFunction::load_json(&path).expect("load");
    std::fs::remove_dir_all(&dir).ok();

    // Same predictions after the round trip.
    use watter_strategy::{DecisionContext, ThresholdProvider};
    let env = watter_core::EnvSnapshot::empty(reloaded.featurizer().grid_dim());
    let probe = watter_core::Order {
        id: watter_core::OrderId(0),
        pickup: watter_core::NodeId(0),
        dropoff: watter_core::NodeId(100),
        riders: 1,
        release: 27_000,
        deadline: 29_000,
        wait_limit: 300,
        direct_cost: 700,
    };
    let ctx = DecisionContext {
        now: 27_050,
        env: &env,
    };
    assert_eq!(
        trained.value.threshold(&probe, &ctx),
        reloaded.threshold(&probe, &ctx)
    );
}

#[test]
fn cancellation_reduces_service_not_correctness() {
    use watter::runner::Algo;
    use watter_sim::CancellationModel;
    let s = small_scenario();
    let off = run_measured(&s, Algo::WatterOnlineCancel(CancellationModel::OFF));
    let mild = run_measured(&s, Algo::WatterOnlineCancel(CancellationModel::mild()));
    // The hazard must be genuinely heavy for service to drop: under
    // overload, mild abandonment relieves congestion and can *raise* the
    // goodput of the remaining orders (standard queueing-with-reneging
    // behavior), so monotonicity only holds once cancellations dominate
    // that relief effect.
    let heavy = run_measured(
        &s,
        Algo::WatterOnlineCancel(CancellationModel {
            base_hazard: 0.05,
            impatience: 0.3,
        }),
    );
    // Every order still reaches a terminal outcome under cancellation.
    assert_eq!(mild.total_orders, s.orders.len() as u64);
    assert_eq!(heavy.total_orders, s.orders.len() as u64);
    assert_eq!(mild.served_orders + mild.rejected_orders, mild.total_orders);
    assert!(heavy.served_orders < off.served_orders);
    assert!(heavy.rejected_orders > off.rejected_orders);
}
