//! Property-based tests of the core invariants, cross-checking components
//! against brute force on randomized inputs.

use proptest::prelude::*;
use watter::prelude::*;
use watter_core::{constraints::validate_route, Dur, NodeId, Order, OrderId, Ts};
use watter_learn::{gmm::Component, optimal_threshold, Gmm};
use watter_pool::{plan_min_cost, OrderPool, PlanLimits, PoolConfig};

/// 1-D metric used by the planner properties: |a−b| × 10 s.
struct Line;
impl TravelCost for Line {
    fn cost(&self, a: NodeId, b: NodeId) -> Dur {
        (a.0 as i64 - b.0 as i64).abs() * 10
    }
}
impl watter_core::TravelBound for Line {}

fn arb_order(id: u32) -> impl Strategy<Value = Order> {
    (0u32..40, 0u32..40, 0i64..100, 13i64..60, 1u32..3).prop_map(
        move |(p, d, release, slack_scale, riders)| {
            let d = if p == d { (d + 1) % 40 } else { d };
            let direct = Line.cost(NodeId(p), NodeId(d));
            Order {
                id: OrderId(id),
                pickup: NodeId(p),
                dropoff: NodeId(d),
                riders,
                release,
                deadline: release + direct * slack_scale / 10 + 1,
                wait_limit: direct,
                direct_cost: direct,
            }
        },
    )
}

/// Brute-force minimal feasible route cost by trying every interleaving.
fn brute_force_cost(orders: &[&Order], now: Ts, capacity: u32) -> Option<Dur> {
    fn rec(
        orders: &[&Order],
        now: Ts,
        capacity: u32,
        seq: &mut Vec<(usize, bool)>,
        picked: u32,
        dropped: u32,
        best: &mut Option<Dur>,
    ) {
        let k = orders.len();
        if dropped.count_ones() as usize == k {
            // evaluate
            let mut t = 0;
            let mut cur: Option<NodeId> = None;
            let mut load = 0u32;
            for &(i, is_drop) in seq.iter() {
                let node = if is_drop {
                    orders[i].dropoff
                } else {
                    orders[i].pickup
                };
                if let Some(c) = cur {
                    t += Line.cost(c, node);
                }
                cur = Some(node);
                if is_drop {
                    load -= orders[i].riders;
                    if now + t >= orders[i].deadline {
                        return;
                    }
                } else {
                    load += orders[i].riders;
                    if load > capacity {
                        return;
                    }
                }
            }
            if best.is_none_or(|b| t < b) {
                *best = Some(t);
            }
            return;
        }
        for i in 0..k {
            let bit = 1u32 << i;
            if picked & bit == 0 {
                seq.push((i, false));
                rec(orders, now, capacity, seq, picked | bit, dropped, best);
                seq.pop();
            } else if dropped & bit == 0 {
                seq.push((i, true));
                rec(orders, now, capacity, seq, picked, dropped | bit, best);
                seq.pop();
            }
        }
    }
    let mut best = None;
    rec(orders, now, capacity, &mut Vec::new(), 0, 0, &mut best);
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The branch-and-bound planner finds exactly the brute-force optimum
    /// and its routes always satisfy Definition 7.
    #[test]
    fn planner_matches_brute_force(
        o0 in arb_order(0),
        o1 in arb_order(1),
        o2 in arb_order(2),
    ) {
        let now = o0.release.min(o1.release).min(o2.release);
        let orders = [&o0, &o1, &o2];
        let limits = PlanLimits { capacity: 3 };
        let planned = plan_min_cost(&orders, now, limits, &Line);
        let brute = brute_force_cost(&orders, now, 3);
        match (planned, brute) {
            (None, None) => {}
            (Some(route), Some(cost)) => {
                prop_assert_eq!(route.cost(), cost, "planner not optimal");
                let owned = [o0.clone(), o1.clone(), o2.clone()];
                prop_assert_eq!(
                    validate_route(&route, &owned, now, 3, &Line),
                    Ok(())
                );
            }
            (p, b) => prop_assert!(
                false,
                "feasibility disagreement: planner={:?} brute={:?}",
                p.map(|r| r.cost()),
                b
            ),
        }
    }

    /// Detours are non-negative and subroute costs are monotone along the
    /// route for any planned pair.
    #[test]
    fn detours_non_negative(o0 in arb_order(0), o1 in arb_order(1)) {
        let now = o0.release.min(o1.release);
        if let Some(route) = plan_min_cost(&[&o0, &o1], now, PlanLimits { capacity: 4 }, &Line) {
            for o in [&o0, &o1] {
                let d = route.detour(o.id, o.direct_cost, &Line);
                prop_assert!(d.is_some());
                prop_assert!(d.unwrap() >= 0);
            }
        }
    }

    /// Pool best groups only ever reference pooled orders, are cliques in
    /// the shareability graph, and stay within capacity.
    #[test]
    fn pool_best_groups_are_consistent(
        orders in prop::collection::vec((0u32..40, 0u32..40, 0i64..200), 3..12)
    ) {
        let mut pool = OrderPool::new(PoolConfig {
            limits: PlanLimits { capacity: 4 },
            ..PoolConfig::default()
        });
        for (i, &(p, d, release)) in orders.iter().enumerate() {
            let d = if p == d { (d + 1) % 40 } else { d };
            let direct = Line.cost(NodeId(p), NodeId(d));
            let order = Order {
                id: OrderId(i as u32),
                pickup: NodeId(p),
                dropoff: NodeId(d),
                riders: 1,
                release,
                deadline: release + 4 * direct,
                wait_limit: direct,
                direct_cost: direct,
            };
            pool.insert(order, release, &Line);
        }
        // Remove a third of the orders to exercise departure maintenance.
        let victims: Vec<OrderId> = (0..orders.len() as u32)
            .step_by(3)
            .map(OrderId)
            .collect();
        pool.remove_orders(&victims, 300, &Line);
        pool.maintain(300, &Line);
        for o in pool.orders() {
            if let Some(g) = pool.best_group(o.id) {
                prop_assert!(g.len() >= 2);
                prop_assert!(g.total_riders() <= 4);
                let ids: Vec<OrderId> = g.order_ids().collect();
                for (i, &a) in ids.iter().enumerate() {
                    prop_assert!(pool.order(a).is_some(), "dangling member {}", a);
                    for &b in &ids[i + 1..] {
                        prop_assert!(
                            pool.graph().connected(a, b),
                            "best group is not a clique: {} !~ {}", a, b
                        );
                    }
                }
            }
        }
    }

    /// The reduced objective optimum lies in [0, p] and dominates a dense
    /// grid of alternatives (convexity claim of Section V-B).
    #[test]
    fn threshold_optimum_dominates_grid(
        penalty in 1.0f64..2_000.0,
        mean in 0.0f64..800.0,
        sd in 1.0f64..300.0,
        w in 0.05f64..0.95,
        mean2 in 0.0f64..800.0,
    ) {
        let gmm = Gmm::new(vec![
            Component { weight: w, mean, var: sd * sd },
            Component { weight: 1.0 - w, mean: mean2, var: sd * sd },
        ]);
        let theta = optimal_threshold(penalty, &gmm);
        prop_assert!((0.0..=penalty).contains(&theta));
        let h = |t: f64| (penalty - t) * gmm.cdf(t);
        let best = h(theta);
        for i in 0..=100 {
            let t = penalty * i as f64 / 100.0;
            prop_assert!(
                best >= h(t) - 1e-6 * best.abs().max(1.0),
                "h({}) = {} beats h(θ*) = {}", t, h(t), best
            );
        }
    }

    /// Order scaling invariants: deadline beyond release + direct, window
    /// and penalty non-negative.
    #[test]
    fn order_scales_invariants(
        release in 0i64..86_400,
        direct in 1i64..3_600,
        tau in 1.0f64..3.0,
        eta in 0.0f64..2.0,
    ) {
        let o = Order::from_scales(
            OrderId(0), NodeId(0), NodeId(1), 1, release, direct, tau, eta,
        );
        prop_assert!(o.deadline >= release + direct);
        prop_assert!(o.wait_limit >= 0);
        prop_assert!(o.penalty() >= 0);
        prop_assert!(o.timeout_at() >= release);
    }
}
