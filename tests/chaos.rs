//! Chaos property suite: crash the daemon anywhere, corrupt what it left
//! behind, and prove recovery is invisible in the results.
//!
//! The contract under test ([`watter::chaos`]): for a fixed (possibly
//! input-faulted) order stream, *process* faults — a crash after an
//! arbitrary seeded line, a torn or bit-flipped newest checkpoint,
//! transient checkpoint-IO errors — never change the final measurements,
//! KPIs, ingest counters or robustness counters. Recovery restores the
//! newest *valid* generation (falling back past corrupted ones) and
//! replays the tail; the result must be bit-identical to an uninterrupted
//! run of the same stream.

use proptest::prelude::*;
use watter::chaos::{run_chaos, ChaosSpec};
use watter_core::{CorruptKind, FaultPlan};
use watter_sim::BackpressurePolicy;
use watter_workload::{CityProfile, Scenario, ScenarioParams};

fn scenario(pidx: usize, seed: u64, n_orders: usize) -> Scenario {
    let mut params = ScenarioParams::default_for(CityProfile::ALL[pidx % CityProfile::ALL.len()]);
    params.n_orders = n_orders;
    params.n_workers = 12;
    params.city_side = 10;
    params.seed = seed;
    Scenario::build(params)
}

/// Per-test checkpoint directory; wiped by the harness before each run.
fn ckpt_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("watter_chaos_{}_{tag}", std::process::id()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The core chaos property: arbitrary seeded crash point, arbitrary
    /// corruption of the newest checkpoint, input faults in the stream,
    /// any backpressure policy — recovery is bit-identical.
    #[test]
    fn crash_recover_replay_is_bit_identical(
        pidx in 0usize..3,
        seed in 0u64..1000,
        crash_frac in 0.05f64..0.95,
        corrupt in 0usize..3,
        policy in 0usize..3,
        ckpt_every in 1u64..16,
    ) {
        let n_orders = 100;
        let scenario = scenario(pidx, seed, n_orders);
        let spec = ChaosSpec {
            fault: FaultPlan {
                seed,
                // Input stream carries one malformed line in ~10 and one
                // delayed line in ~7 so recovery must also reproduce the
                // rejected/reordered bookkeeping, not just clean orders.
                malformed_every: Some(10),
                delay_every: Some(7),
                delay_slots: 2,
                crash_after_events: Some((n_orders as f64 * crash_frac) as u64),
                corrupt_on_crash: [None, Some(CorruptKind::Torn), Some(CorruptKind::BitFlip)]
                    [corrupt],
                io_failures: 0,
            },
            policy: [
                BackpressurePolicy::Block,
                BackpressurePolicy::Shed,
                BackpressurePolicy::Degrade,
            ][policy],
            // Tight enough that backpressure engages on real streams.
            high_watermark: 6,
            low_watermark: 3,
            checkpoint_every_events: ckpt_every,
            keep: 3,
        };
        let outcome = run_chaos(&scenario, &spec, &ckpt_dir("prop")).unwrap();
        prop_assert!(outcome.crashed_at.is_some(), "crash must fire inside the stream");
        prop_assert!(
            outcome.is_consistent(),
            "recovered run diverged: crashed_at={:?} resumed_from={:?} discarded={} \
             ref=({:?}, shed={} deg={} blk={}) rec=({:?}, shed={} deg={} blk={})",
            outcome.crashed_at,
            outcome.resumed_from,
            outcome.discarded_generations,
            outcome.reference.measurements.without_timing(),
            outcome.reference.robustness.shed,
            outcome.reference.robustness.degraded,
            outcome.reference.robustness.blocked,
            outcome.recovered.measurements.without_timing(),
            outcome.recovered.robustness.shed,
            outcome.recovered.robustness.degraded,
            outcome.recovered.robustness.blocked,
        );
    }

    /// Transient checkpoint-IO failures are retried (or at worst skip a
    /// checkpoint) without ever poisoning recovery.
    #[test]
    fn checkpoint_io_failures_never_poison_recovery(
        seed in 0u64..1000,
        io_failures in 1u32..3,
    ) {
        let scenario = scenario(0, seed, 80);
        let spec = ChaosSpec {
            fault: FaultPlan {
                seed,
                crash_after_events: Some(50),
                io_failures,
                ..FaultPlan::NONE
            },
            checkpoint_every_events: 5,
            ..ChaosSpec::default()
        };
        let outcome = run_chaos(&scenario, &spec, &ckpt_dir("io")).unwrap();
        prop_assert!(outcome.is_consistent());
    }
}

/// Corrupting the newest checkpoint forces recovery to discard it and fall
/// back a generation — and the result still matches bit for bit.
#[test]
fn corrupted_newest_checkpoint_falls_back_a_generation() {
    for (kind, tag) in [(CorruptKind::Torn, "torn"), (CorruptKind::BitFlip, "flip")] {
        let scenario = scenario(1, 42, 90);
        let spec = ChaosSpec {
            fault: FaultPlan {
                seed: 42,
                crash_after_events: Some(60),
                corrupt_on_crash: Some(kind),
                ..FaultPlan::NONE
            },
            checkpoint_every_events: 8,
            keep: 4,
            ..ChaosSpec::default()
        };
        let outcome = run_chaos(&scenario, &spec, &ckpt_dir(tag)).unwrap();
        assert_eq!(outcome.crashed_at, Some(60), "{tag}: crash point");
        assert!(
            outcome.discarded_generations >= 1,
            "{tag}: the corrupted newest generation must be discarded"
        );
        assert!(outcome.is_consistent(), "{tag}: fallback recovery diverged");
        // Fallback means the replay cursor is at least one cadence short
        // of the newest (corrupted) checkpoint's position.
        let resumed = outcome.resumed_from.expect("resumed from a checkpoint");
        assert!(
            resumed + spec.checkpoint_every_events <= 60,
            "{tag}: resumed_from={resumed} should predate the corrupted generation"
        );
    }
}

/// A crash before the first checkpoint ever lands: recovery restarts from
/// scratch (resumed_from = 0) and still converges.
#[test]
fn crash_before_first_checkpoint_restarts_from_scratch() {
    let scenario = scenario(2, 7, 80);
    let spec = ChaosSpec {
        fault: FaultPlan {
            seed: 7,
            crash_after_events: Some(3),
            ..FaultPlan::NONE
        },
        checkpoint_every_events: 50,
        ..ChaosSpec::default()
    };
    let outcome = run_chaos(&scenario, &spec, &ckpt_dir("scratch")).unwrap();
    assert_eq!(outcome.crashed_at, Some(3));
    assert_eq!(
        outcome.resumed_from,
        Some(0),
        "no checkpoint should predate the crash"
    );
    assert!(outcome.is_consistent());
}

/// Shed and Degrade accounting reconciles against the ingest totals even
/// across a crash: every admitted order is either dispatched into the core
/// or counted shed, and the counters survive recovery unchanged.
#[test]
fn shed_and_degrade_counts_reconcile_after_recovery() {
    let scenario = scenario(0, 11, 120);
    for policy in [BackpressurePolicy::Shed, BackpressurePolicy::Degrade] {
        let spec = ChaosSpec {
            fault: FaultPlan {
                seed: 11,
                crash_after_events: Some(70),
                corrupt_on_crash: Some(CorruptKind::Torn),
                ..FaultPlan::NONE
            },
            policy,
            high_watermark: 4,
            low_watermark: 2,
            checkpoint_every_events: 6,
            ..ChaosSpec::default()
        };
        let outcome = run_chaos(&scenario, &spec, &ckpt_dir("reconcile")).unwrap();
        assert!(outcome.is_consistent(), "{policy:?}: recovery diverged");
        let run = &outcome.recovered;
        assert_eq!(
            run.measurements.total_orders,
            run.ingest.admitted - run.robustness.shed,
            "{policy:?}: admitted orders must be dispatched or counted shed"
        );
        match policy {
            BackpressurePolicy::Shed => {
                assert!(run.robustness.shed > 0, "watermarks this tight must shed");
                assert_eq!(run.robustness.degraded, 0);
            }
            BackpressurePolicy::Degrade => {
                assert!(
                    run.robustness.degraded > 0,
                    "watermarks this tight must degrade"
                );
                assert_eq!(run.robustness.shed, 0);
            }
            BackpressurePolicy::Block => unreachable!(),
        }
    }
}

/// The `--trace` recovery contract, end to end at the daemon level: a
/// killed daemon's drained journal plus the resumed daemon's journal —
/// the resumed half on a *fresh* recorder, seeded only by the sequence
/// number its checkpoint carried — deduplicated by `seq`, equals the
/// uninterrupted run's journal bit for bit. Replayed events re-emit
/// the same sequence numbers as the originals, so stitching never
/// double-counts.
#[test]
fn trace_journal_survives_kill_restore_replay() {
    use std::collections::BTreeMap;
    use watter::prelude::{Recorder, TraceRecord};
    use watter::runner::{sim_config, watter_config};
    use watter_sim::{
        fault_lines, CheckpointStore, Daemon, DaemonConfig, FeedOutcome, IngestConfig,
        WatterDispatcher,
    };
    use watter_strategy::OnlinePolicy;

    let scenario = scenario(0, 11, 90);
    let lines = fault_lines(&scenario.orders, &FaultPlan::NONE);
    let sim = sim_config(&scenario);
    let ingest_cfg = IngestConfig::for_nodes(scenario.graph.node_count());
    let oracle = scenario.oracle.as_ref();
    let make = || WatterDispatcher::new(watter_config(&scenario), OnlinePolicy);
    let cfg = |fault| DaemonConfig {
        checkpoint_every_events: 8,
        fault,
        ..DaemonConfig::default()
    };
    let open = |tag: &str, wipe: bool| {
        let dir = ckpt_dir(tag);
        if wipe {
            let _ = std::fs::remove_dir_all(&dir);
        }
        CheckpointStore::open(&dir, 3, FaultPlan::NONE).expect("open store")
    };

    // Reference: uninterrupted, with its own store so checkpoint trace
    // events land at the same line counts as in the killed run.
    let mut reference = Daemon::new(
        scenario.workers.clone(),
        sim,
        make(),
        oracle,
        ingest_cfg,
        cfg(FaultPlan::NONE),
        Some(open("trace_ref", true)),
    );
    reference.set_recorder(Recorder::enabled());
    for line in &lines {
        assert!(!matches!(reference.feed_line(line), FeedOutcome::Crashed));
    }
    reference.close_and_drain();
    let expected = reference.recorder().drain_trace();
    assert!(!expected.is_empty(), "degenerate scenario");

    // The kill: crash after line 21 — past the checkpoint at 16 but not
    // on a checkpoint boundary, so recovery replays lines 17..=21 and
    // re-emits their trace events.
    let mut crashed = Daemon::new(
        scenario.workers.clone(),
        sim,
        make(),
        oracle,
        ingest_cfg,
        cfg(FaultPlan::crash_at(21, None)),
        Some(open("trace_kill", true)),
    );
    crashed.set_recorder(Recorder::enabled());
    let mut died = false;
    for line in &lines {
        if matches!(crashed.feed_line(line), FeedOutcome::Crashed) {
            died = true;
            break;
        }
    }
    assert!(died, "fault plan must fire");
    // What a `--trace` tail had flushed before the power cut.
    let part1 = crashed.recorder().drain_trace();
    drop(crashed);

    let mut recovered = Daemon::resume(
        open("trace_kill", false),
        make(),
        oracle,
        ingest_cfg,
        cfg(FaultPlan::NONE),
    )
    .expect("resume")
    .expect("a checkpoint predates the crash");
    // Fresh recorder, attached *after* restore: it resumes numbering
    // from the checkpoint's carried sequence, not from zero.
    recovered.set_recorder(Recorder::enabled());
    let skip = recovered.lines_consumed() as usize;
    assert!(skip > 0 && skip < 21, "crash must outrun a checkpoint");
    for line in &lines[skip..] {
        assert!(!matches!(recovered.feed_line(line), FeedOutcome::Crashed));
    }
    recovered.close_and_drain();
    let part2 = recovered.recorder().drain_trace();

    // Stitch by sequence number. A seq seen twice (the replayed
    // overlap) must carry the identical record.
    let mut by_seq: BTreeMap<u64, TraceRecord> = BTreeMap::new();
    for rec in part1.into_iter().chain(part2) {
        if let Some(prev) = by_seq.insert(rec.seq, rec.clone()) {
            assert_eq!(prev, rec, "conflicting records under one seq");
        }
    }
    let stitched: Vec<TraceRecord> = by_seq.into_values().collect();
    assert_eq!(stitched, expected);
}

/// With no process faults scheduled the chaos harness degenerates to two
/// identical uninterrupted runs — a sanity anchor for the suite.
#[test]
fn no_faults_is_trivially_consistent() {
    let scenario = scenario(1, 3, 60);
    let spec = ChaosSpec::default();
    let outcome = run_chaos(&scenario, &spec, &ckpt_dir("clean")).unwrap();
    assert_eq!(outcome.crashed_at, None);
    assert!(outcome.is_consistent());
}
