//! Subprocess smoke tests for the `watter-daemon` binary: the crash
//! recovery the chaos suite proves at the library level must also hold
//! for the real process — pipes, SIGKILL, checkpoint files on disk and
//! all. Everything runs at tiny scale so the suite stays fast.

use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const FLAGS: &[&str] = &[
    "--profile",
    "cdc",
    "--orders",
    "60",
    "--workers",
    "8",
    "--city-side",
    "10",
    "--seed",
    "7",
];

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_watter-cli"))
}

fn daemon() -> Command {
    Command::new(env!("CARGO_BIN_EXE_watter-daemon"))
}

fn temp_dir(name: &str) -> PathBuf {
    // Per-process directory so concurrent test invocations (parallel CI
    // jobs on one runner) can't race on the same file names.
    let dir = std::env::temp_dir().join(format!("watter_daemon_smoke_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let dir = dir.join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create test dir");
    dir
}

/// The canonical stat block with the wall-clock row dropped — everything
/// else must be bit-identical between a batch run and any daemon run.
fn stable_stats(stdout: &[u8]) -> String {
    String::from_utf8_lossy(stdout)
        .lines()
        .filter(|l| !l.starts_with("running time"))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Order stream + uninterrupted `watter-cli run` reference stat block.
fn reference(dir: &Path) -> (PathBuf, String) {
    let orders = dir.join("orders.ndjson");
    let out = cli()
        .arg("orders")
        .args(FLAGS)
        .arg("--out")
        .arg(&orders)
        .output()
        .expect("run watter-cli orders");
    assert!(out.status.success(), "orders failed: {out:?}");
    let run = cli()
        .arg("run")
        .args(FLAGS)
        .output()
        .expect("run watter-cli run");
    assert!(run.status.success(), "run failed: {run:?}");
    (orders, stable_stats(&run.stdout))
}

/// Poll until `pred` holds or the timeout elapses.
fn wait_for(mut pred: impl FnMut() -> bool, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !pred() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn checkpoint_count(ckpt: &Path) -> usize {
    std::fs::read_dir(ckpt).map(|d| d.count()).unwrap_or(0)
}

/// Feed `lines` to a daemon reading stdin, SIGKILL it once checkpoints
/// exist, and return after the process is gone.
fn kill_mid_run(mut child: Child, lines: &[&str], ckpt: &Path) {
    let mut stdin = child.stdin.take().expect("stdin piped");
    for line in lines {
        writeln!(stdin, "{line}").expect("write order line");
    }
    stdin.flush().expect("flush");
    // Hold stdin open — the daemon must die by signal, not EOF drain.
    wait_for(|| checkpoint_count(ckpt) >= 2, "checkpoints on disk");
    child.kill().expect("SIGKILL daemon");
    child.wait().expect("reap daemon");
}

/// Pipe orders in, SIGKILL the daemon mid-run, restart it with `--resume`
/// over the full stream: the recovered stat block must match the
/// uninterrupted `watter-cli run` reference bit for bit.
#[test]
fn sigkill_resume_matches_batch_reference() {
    let dir = temp_dir("sigkill");
    let (orders, want) = reference(&dir);
    let ckpt = dir.join("ckpt");
    let text = std::fs::read_to_string(&orders).expect("read orders");
    let lines: Vec<&str> = text.lines().collect();

    let child = daemon()
        .args(FLAGS)
        .args(["--ckpt-every", "5", "--ckpt-dir"])
        .arg(&ckpt)
        .stdin(Stdio::piped())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn daemon");
    // Feed roughly two thirds of the stream, then pull the plug.
    kill_mid_run(child, &lines[..40], &ckpt);

    let resumed = daemon()
        .args(FLAGS)
        .args(["--ckpt-dir"])
        .arg(&ckpt)
        .args(["--resume", "--input"])
        .arg(&orders)
        .output()
        .expect("resume daemon");
    assert!(resumed.status.success(), "resume failed: {resumed:?}");
    let stderr = String::from_utf8_lossy(&resumed.stderr);
    assert!(
        stderr.contains("resumed"),
        "expected a resume from checkpoint, got stderr:\n{stderr}"
    );
    assert_eq!(stable_stats(&resumed.stdout), want, "stderr:\n{stderr}");
}

/// An injected crash (`--fault-crash-after`) exits with the dedicated
/// code 42, and recovery over the same file converges all the same — the
/// scripted flavor of the chaos property, exactly as CI drives it.
#[test]
fn injected_crash_then_resume_matches_batch_reference() {
    let dir = temp_dir("inject");
    let (orders, want) = reference(&dir);
    let ckpt = dir.join("ckpt");

    let crashed = daemon()
        .args(FLAGS)
        .args(["--ckpt-every", "8", "--ckpt-dir"])
        .arg(&ckpt)
        .args([
            "--fault-crash-after",
            "25",
            "--fault-corrupt",
            "bitflip",
            "--input",
        ])
        .arg(&orders)
        .output()
        .expect("run crashing daemon");
    assert_eq!(
        crashed.status.code(),
        Some(42),
        "injected crash must exit 42: {crashed:?}"
    );

    let resumed = daemon()
        .args(FLAGS)
        .args(["--ckpt-dir"])
        .arg(&ckpt)
        .args(["--resume", "--input"])
        .arg(&orders)
        .output()
        .expect("resume daemon");
    assert!(resumed.status.success(), "resume failed: {resumed:?}");
    let stderr = String::from_utf8_lossy(&resumed.stderr);
    assert!(
        stderr.contains("discarded=1"),
        "the bit-flipped newest checkpoint must be discarded, stderr:\n{stderr}"
    );
    assert_eq!(stable_stats(&resumed.stdout), want, "stderr:\n{stderr}");
}

/// SIGTERM converts into a final checkpoint and a clean drain: exit 0,
/// the stat block on stdout, and a `#kpis` control line answered live
/// beforehand proves the event loop was serving queries mid-stream.
#[test]
fn sigterm_drains_cleanly_and_serves_live_kpis() {
    let dir = temp_dir("sigterm");
    let (orders, want) = reference(&dir);
    let ckpt = dir.join("ckpt");
    let kpis = dir.join("live_kpis.json");
    let text = std::fs::read_to_string(&orders).expect("read orders");

    let mut child = daemon()
        .args(FLAGS)
        .args(["--ckpt-every", "10", "--ckpt-dir"])
        .arg(&ckpt)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn daemon");
    let mut stdin = child.stdin.take().expect("stdin piped");
    for line in text.lines() {
        writeln!(stdin, "{line}").expect("write order line");
    }
    // The kpis file doubles as a sync barrier: once it exists, every
    // order line before the control line has been consumed.
    writeln!(stdin, "#kpis {}", kpis.display()).expect("write control line");
    stdin.flush().expect("flush");
    wait_for(|| kpis.exists(), "live kpi query answered");
    let live = std::fs::read_to_string(&kpis).expect("read live kpis");
    assert!(
        live.trim_start().starts_with('{'),
        "live KPI report should be JSON, got: {live}"
    );

    // SIGTERM while stdin is still open — the drain must come from the
    // signal path, not EOF.
    let term = Command::new("kill")
        .arg(child.id().to_string())
        .status()
        .expect("send SIGTERM");
    assert!(term.success());
    wait_for(
        || child.try_wait().expect("try_wait").is_some(),
        "daemon exit after SIGTERM",
    );
    drop(stdin);
    let out = child.wait_with_output().expect("collect output");
    assert!(out.status.success(), "SIGTERM exit must be clean: {out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("sigterm"),
        "drain must come from the signal path, stderr:\n{stderr}"
    );
    assert_eq!(stable_stats(&out.stdout), want, "stderr:\n{stderr}");
    assert!(
        checkpoint_count(&ckpt) >= 1,
        "SIGTERM must leave a final checkpoint behind"
    );
}

/// Malformed input lines are counted and reported, never fatal: a stream
/// with garbage interleaved still drains to a clean exit.
#[test]
fn malformed_lines_are_survived_and_counted() {
    let dir = temp_dir("malformed");
    let (orders, _) = reference(&dir);
    let text = std::fs::read_to_string(&orders).expect("read orders");
    let mut garbled = String::new();
    for (i, line) in text.lines().enumerate() {
        if i % 7 == 0 {
            garbled.push_str(&line[..line.len() / 2]);
            garbled.push('\n');
        }
        garbled.push_str(line);
        garbled.push('\n');
    }
    let garbled_path = dir.join("garbled.ndjson");
    std::fs::write(&garbled_path, garbled).expect("write garbled stream");

    let out = daemon()
        .args(FLAGS)
        .arg("--input")
        .arg(&garbled_path)
        .output()
        .expect("run daemon on garbled stream");
    assert!(
        out.status.success(),
        "garbage must not kill the daemon: {out:?}"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("malformed=9"),
        "9 injected garbage lines must be counted, stderr:\n{stderr}"
    );
}
