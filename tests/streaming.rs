//! Driver-equivalence contract of the dispatch core.
//!
//! The batch driver (`run`) replays a scenario through `DispatchCore` and
//! must be **bit-identical** to the pre-refactor monolithic event loop,
//! preserved as `run_monolithic` — same seed ⇒ same `Measurements`, on
//! every city profile and thread count. The streaming driver
//! (`run_stream`) feeds the same scenario through the ingest/validation
//! front end order by order and must land on the same outcome (scenario
//! orders pass every validation check, so ingest admits all of them).
//!
//! Wall-clock decision time is the one legitimately varying field;
//! comparisons use `Measurements::without_timing`.

use proptest::prelude::*;
use watter::prelude::*;
use watter::runner::{sim_config, watter_config};
use watter_core::DispatchParallelism;
use watter_sim::engine::run_monolithic;
use watter_sim::{run, run_stream};
use watter_strategy::OnlinePolicy;

fn scenario_for(pidx: usize, seed: u64, parallelism: DispatchParallelism) -> Scenario {
    let mut params = ScenarioParams::default_for(CityProfile::ALL[pidx]);
    params.n_orders = 120;
    params.n_workers = 12;
    params.city_side = 10;
    params.seed = seed;
    params.parallelism = parallelism;
    Scenario::build(params)
}

proptest! {
    // Each case runs the engine several times; keep the case count modest
    // so single-core CI stays fast.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The core-driven batch driver reproduces the monolithic loop bit
    /// for bit on every profile, for the sequential and parallel engine.
    #[test]
    fn batch_driver_matches_monolithic_loop(
        pidx in 0usize..3,
        seed in 0u64..1_000,
        tidx in 0usize..2,
    ) {
        let threads = [1usize, 4][tidx];
        let scenario = scenario_for(pidx, seed, DispatchParallelism { threads, shards: threads });
        let cfg = sim_config(&scenario);

        let mut d_old = WatterDispatcher::new(watter_config(&scenario), OnlinePolicy);
        let reference = run_monolithic(
            scenario.orders.clone(),
            scenario.workers.clone(),
            &mut d_old,
            scenario.oracle.as_ref(),
            cfg,
        );
        prop_assert!(reference.served_orders > 0, "degenerate scenario");

        let mut d_new = WatterDispatcher::new(watter_config(&scenario), OnlinePolicy);
        let core_driven = run(
            scenario.orders.clone(),
            scenario.workers.clone(),
            &mut d_new,
            scenario.oracle.as_ref(),
            cfg,
        );
        prop_assert_eq!(core_driven.without_timing(), reference.without_timing());
    }

    /// The streaming driver (ingest front end, incremental checks) lands
    /// on the batch driver's exact outcome and admits every scenario
    /// order.
    #[test]
    fn streaming_driver_matches_batch_driver(
        pidx in 0usize..3,
        seed in 0u64..1_000,
    ) {
        let scenario = scenario_for(pidx, seed, DispatchParallelism::SEQUENTIAL);
        let cfg = sim_config(&scenario);

        let mut d_batch = WatterDispatcher::new(watter_config(&scenario), OnlinePolicy);
        let batch = run(
            scenario.orders.clone(),
            scenario.workers.clone(),
            &mut d_batch,
            scenario.oracle.as_ref(),
            cfg,
        );

        let mut d_stream = WatterDispatcher::new(watter_config(&scenario), OnlinePolicy);
        let out = run_stream(
            scenario.orders.clone(),
            scenario.workers.clone(),
            &mut d_stream,
            scenario.oracle.as_ref(),
            cfg,
            IngestConfig::for_nodes(scenario.graph.node_count()),
        );
        prop_assert_eq!(out.measurements.without_timing(), batch.without_timing());
        prop_assert_eq!(out.ingest.admitted as usize, scenario.orders.len());
        prop_assert_eq!(out.ingest.rejected, 0);
    }
}

/// The non-sharing baseline (pending queue exercised heavily) agrees
/// between the monolithic loop and both core drivers.
#[test]
fn nonsharing_baseline_agrees_across_drivers() {
    use watter_baselines::NonSharingDispatcher;
    let scenario = scenario_for(1, 7, DispatchParallelism::SEQUENTIAL);
    let cfg = sim_config(&scenario);

    let mut d = NonSharingDispatcher::new();
    let reference = run_monolithic(
        scenario.orders.clone(),
        scenario.workers.clone(),
        &mut d,
        scenario.oracle.as_ref(),
        cfg,
    );
    let mut d = NonSharingDispatcher::new();
    let batch = run(
        scenario.orders.clone(),
        scenario.workers.clone(),
        &mut d,
        scenario.oracle.as_ref(),
        cfg,
    );
    let mut d = NonSharingDispatcher::new();
    let streamed = run_stream(
        scenario.orders.clone(),
        scenario.workers.clone(),
        &mut d,
        scenario.oracle.as_ref(),
        cfg,
        IngestConfig::for_nodes(scenario.graph.node_count()),
    );
    assert_eq!(batch.without_timing(), reference.without_timing());
    assert_eq!(
        streamed.measurements.without_timing(),
        reference.without_timing()
    );
}
