//! Oracle equivalence and overflow-safety properties.
//!
//! The whole framework assumes every `TravelCost` backend answers the same
//! number for the same pair: the dense table, the ALT A* oracle, the
//! contraction hierarchy and plain Dijkstra must be bit-identical on every
//! city the tier-1 suite uses — synthetic or round-tripped through the
//! plain-text import format — and none of them may ever report a finite
//! distance beyond `UNREACHABLE`, whatever the edge weights. CH
//! preprocessing must additionally be bit-identical for every thread
//! count.

use proptest::prelude::*;
use std::sync::Arc;
use watter::prelude::*;
use watter_core::{Exec, NodeId, TravelBound};
use watter_road::dijkstra::{shortest_path_cost, UNREACHABLE};
use watter_road::graph::Edge;
use watter_road::{export_graph, parse_graph, AltOracle, ChOracle};

fn profile(idx: usize) -> CityProfile {
    CityProfile::ALL[idx % CityProfile::ALL.len()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// `AltOracle` returns costs bit-identical to `CostMatrix` and to
    /// point-to-point Dijkstra on tier-1 city topologies of every profile.
    #[test]
    fn alt_oracle_matches_dense_and_dijkstra(
        pidx in 0usize..3,
        side in 5usize..11,
        seed in 0u64..500,
        landmarks in 1usize..7,
    ) {
        let graph = Arc::new(profile(pidx).city_config(side).generate(seed));
        let dense = CostMatrix::build(&graph);
        let alt = AltOracle::build(Arc::clone(&graph), landmarks);
        let n = graph.node_count() as u32;
        // Deterministic pair sample covering corners and interior.
        let probes: Vec<(u32, u32)> = (0..60)
            .map(|i| ((i * 37 + seed as u32) % n, (i * 101 + 13) % n))
            .chain([(0, n - 1), (n - 1, 0), (n / 2, n / 2)])
            .collect();
        for (a, b) in probes {
            let (a, b) = (NodeId(a), NodeId(b));
            let want = dense.cost(a, b);
            prop_assert_eq!(alt.cost(a, b), want, "alt {} -> {}", a, b);
            prop_assert_eq!(shortest_path_cost(&graph, a, b), want, "dijkstra {} -> {}", a, b);
        }
    }

    /// `ChOracle` returns costs bit-identical to `CostMatrix` and to
    /// point-to-point Dijkstra on tier-1 city topologies of every profile,
    /// whether the graph is native or round-tripped through the plain-text
    /// import format — and preprocessing is bit-identical for every thread
    /// count.
    #[test]
    fn ch_oracle_matches_dense_and_dijkstra(
        pidx in 0usize..3,
        side in 5usize..11,
        seed in 0u64..500,
        threads in 1usize..5,
    ) {
        let graph = Arc::new(profile(pidx).city_config(side).generate(seed));
        let dense = CostMatrix::build(&graph);
        let ch = ChOracle::build(Arc::clone(&graph));
        // Same hierarchy from parallel preprocessing…
        let par = ChOracle::build_with_exec(Arc::clone(&graph), &Exec::new(threads));
        prop_assert!(ch.same_hierarchy(&par), "hierarchy differs at {} threads", threads);
        // …and from an imported copy of the graph (exact round trip).
        let imported = Arc::new(parse_graph(&export_graph(&graph)).expect("round trip"));
        prop_assert_eq!(imported.as_ref(), graph.as_ref());
        let ch_imported = ChOracle::build(Arc::clone(&imported));
        prop_assert!(ch.same_hierarchy(&ch_imported), "imported hierarchy differs");

        let n = graph.node_count() as u32;
        // Deterministic pair sample covering corners and interior.
        let probes: Vec<(u32, u32)> = (0..60)
            .map(|i| ((i * 37 + seed as u32) % n, (i * 101 + 13) % n))
            .chain([(0, n - 1), (n - 1, 0), (n / 2, n / 2)])
            .collect();
        for (a, b) in probes {
            let (a, b) = (NodeId(a), NodeId(b));
            let want = dense.cost(a, b);
            prop_assert_eq!(ch.cost(a, b), want, "ch {} -> {}", a, b);
            prop_assert_eq!(ch_imported.cost(a, b), want, "ch-imported {} -> {}", a, b);
            prop_assert_eq!(shortest_path_cost(&graph, a, b), want, "dijkstra {} -> {}", a, b);
            // CH bounds are exact, like the dense table's.
            prop_assert_eq!(ch.lower_bound(a, b), want, "ch bound {} -> {}", a, b);
        }
    }

    /// CH == Dijkstra on graphs with disconnected components: unreachable
    /// pairs answer exactly `UNREACHABLE`, reachable ones the true cost.
    #[test]
    fn ch_oracle_handles_disconnected_components(
        sizes in prop::collection::vec(2usize..6, 1..4),
        weights_seed in 0u64..1000,
    ) {
        // Several disjoint path components, deterministic weights.
        let n: usize = sizes.iter().sum();
        let coords: Vec<(f64, f64)> = (0..n).map(|i| (i as f64, 0.0)).collect();
        let mut edges = Vec::new();
        let mut base = 0u32;
        for &len in &sizes {
            for i in 0..len as u32 - 1 {
                edges.push(Edge {
                    from: NodeId(base + i),
                    to: NodeId(base + i + 1),
                    travel: 1 + ((weights_seed.wrapping_mul(31).wrapping_add((base + i) as u64)) % 97) as i64,
                });
            }
            base += len as u32;
        }
        let graph = Arc::new(RoadGraph::from_undirected_edges(coords, edges));
        let ch = ChOracle::build(Arc::clone(&graph));
        for a in graph.nodes() {
            for b in graph.nodes() {
                let want = shortest_path_cost(&graph, a, b);
                prop_assert_eq!(ch.cost(a, b), want, "ch {} -> {}", a, b);
            }
        }
    }

    /// No oracle ever returns a finite value exceeding `UNREACHABLE` (or a
    /// negative one), even for adversarial edge weights whose path sums
    /// would wrap `i64`.
    #[test]
    fn no_oracle_exceeds_unreachable(
        weights in prop::collection::vec(1i64..=i64::MAX / 2, 2..10),
        extra in prop::collection::vec((0u32..10, 0u32..10, 1i64..=i64::MAX / 2), 0..6),
    ) {
        // A path graph with adversarial weights plus random shortcut edges.
        let n = (weights.len() + 1) as u32;
        let coords: Vec<(f64, f64)> = (0..n).map(|i| (i as f64, 0.0)).collect();
        let mut edges: Vec<Edge> = weights
            .iter()
            .enumerate()
            .map(|(i, &w)| Edge {
                from: NodeId(i as u32),
                to: NodeId(i as u32 + 1),
                travel: w,
            })
            .collect();
        for &(a, b, w) in &extra {
            let (a, b) = (a % n, b % n);
            if a != b {
                edges.push(Edge { from: NodeId(a), to: NodeId(b), travel: w });
            }
        }
        let graph = Arc::new(RoadGraph::from_undirected_edges(coords, edges));
        let alt = AltOracle::build(Arc::clone(&graph), 2);
        let ch = ChOracle::build(Arc::clone(&graph));
        for a in graph.nodes() {
            for b in graph.nodes() {
                let d = shortest_path_cost(&graph, a, b);
                prop_assert!((0..=UNREACHABLE).contains(&d), "dijkstra {} -> {} = {}", a, b, d);
                let ad = alt.cost(a, b);
                prop_assert!((0..=UNREACHABLE).contains(&ad), "alt {} -> {} = {}", a, b, ad);
                prop_assert_eq!(ad, d, "oracles disagree on {} -> {}", a, b);
                let cd = ch.cost(a, b);
                prop_assert!((0..=UNREACHABLE).contains(&cd), "ch {} -> {} = {}", a, b, cd);
                prop_assert_eq!(cd, d, "ch disagrees on {} -> {}", a, b);
            }
        }
    }
}
