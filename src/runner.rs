//! One-call experiment runner.
//!
//! Maps an algorithm name to a configured dispatcher and executes it on a
//! [`Scenario`] through one of the dispatch-core drivers
//! ([`DriveMode`]), returning the paper's four measurements plus the
//! operational KPI surface. This is the unit of work of every table and
//! figure reproduction.

use std::sync::Arc;
use watter_baselines::{GasConfig, GasDispatcher, GdpConfig, GdpDispatcher, NonSharingDispatcher};
use watter_core::{CostWeights, Kpis, Measurements, OracleCacheKpis, RunStats, TravelBound};
use watter_learn::ValueFunction;
use watter_obs::{Counter, Recorder};
use watter_pool::{cliques::CliqueLimits, PlanLimits, PoolConfig, SpatialPrune};
use watter_road::{stage_for_backend, CachedOracle, CityOracle, ObservedOracle};
use watter_sim::{
    run_recorded, run_stream_recorded, DispatchCore, DispatchSnapshot, Dispatcher, Event,
    IngestConfig, IngestStats, SimConfig, SnapshotDispatcher, WatterConfig, WatterDispatcher,
};
use watter_strategy::{DecisionPolicy, OnlinePolicy, ThresholdPolicy, TimeoutPolicy};
use watter_workload::Scenario;

/// The algorithms compared in the paper's evaluation.
pub enum Algo {
    /// GDP greedy insertion \[9\].
    Gdp,
    /// GAS batch additive-tree grouping \[2\].
    Gas,
    /// Non-sharing sequential baseline (Example 1).
    NonSharing,
    /// WATTER with the dispatch-ASAP policy.
    WatterOnline,
    /// WATTER with the dispatch-as-late-as-possible policy.
    WatterTimeout,
    /// WATTER-expect with a GMM-optimal threshold (Section V-C, no RL).
    WatterExpectGmm(Arc<watter_learn::Gmm>),
    /// WATTER-expect with the learned value function (Section VI).
    WatterExpectValue(Arc<ValueFunction>),
    /// WATTER-expect with a constant threshold (ablation: the base case of
    /// Section V-A before any learning).
    WatterConstant(f64),
    /// WATTER-online under an explicit rider-cancellation model
    /// (robustness ablation; Section VI-A treats cancellation as implicit
    /// expiration).
    WatterOnlineCancel(watter_sim::CancellationModel),
}

impl Algo {
    /// Display name matching the paper's legend.
    pub fn name(&self) -> &'static str {
        match self {
            Algo::Gdp => "GDP",
            Algo::Gas => "GAS",
            Algo::NonSharing => "NonSharing",
            Algo::WatterOnline => "WATTER-online",
            Algo::WatterTimeout => "WATTER-timeout",
            Algo::WatterExpectGmm(_) => "WATTER-expect-gmm",
            Algo::WatterExpectValue(_) => "WATTER-expect",
            Algo::WatterConstant(_) => "WATTER-const",
            Algo::WatterOnlineCancel(_) => "WATTER-online+cancel",
        }
    }
}

/// How the runner feeds a scenario to the dispatch core.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DriveMode {
    /// Batch driver: queue the whole scenario, close, drain
    /// ([`run_with_kpis`]).
    #[default]
    Batch,
    /// Streaming driver: orders flow through ingest validation and
    /// interleave with due checks ([`run_stream`]).
    Stream,
    /// Batch semantics, but mid-run the core and dispatcher are
    /// serialized to JSON, dropped, restored into a *fresh* dispatcher,
    /// and the tail replayed — exercising the snapshot/restore contract
    /// end to end. Identical results to [`DriveMode::Batch`] modulo
    /// wall-clock timing. Only dispatchers with serializable runtime
    /// state support it (the WATTER family and NonSharing).
    SnapshotRoundtrip,
}

/// Outcome of one driven run.
pub struct RunOutput {
    /// The paper's measurements.
    pub measurements: Measurements,
    /// The KPI accumulator (summarize via
    /// [`Kpis::report`]).
    pub kpis: Kpis,
    /// Ingest counters ([`DriveMode::Stream`] only).
    pub ingest: Option<IngestStats>,
    /// Cost-cache counters (`--cost-cache` runs only).
    pub cache: Option<OracleCacheKpis>,
}

impl RunOutput {
    /// The report-ready KPI summary, with the cache counters attached.
    pub fn kpi_report(&self) -> watter_core::KpiReport {
        let mut report = self.kpis.report(&self.measurements);
        report.cache = self.cache;
        report
    }
}

/// Pool configuration derived from scenario parameters.
pub fn pool_config(scenario: &Scenario) -> PoolConfig {
    PoolConfig {
        limits: PlanLimits {
            capacity: scenario.params.max_capacity,
        },
        clique: CliqueLimits {
            max_group_size: scenario.params.max_capacity as usize,
            max_neighbors: 12,
        },
        weights: CostWeights::default(),
    }
}

/// WATTER dispatcher configuration derived from scenario parameters.
///
/// Pool inserts always use spatial candidate pruning (bit-identical to the
/// full scan, strictly less work — see `watter_pool::spatial`), bucketing
/// pooled orders with the same grid the snapshots use.
pub fn watter_config(scenario: &Scenario) -> WatterConfig {
    WatterConfig {
        pool: pool_config(scenario),
        grid: scenario.grid.clone(),
        check_period: scenario.params.check_period,
        cancellation: watter_sim::CancellationModel::OFF,
        cancel_seed: scenario.params.seed,
        spatial: Some(SpatialPrune::for_graph(
            &scenario.graph,
            scenario.grid.clone(),
        )),
        parallelism: scenario.params.parallelism,
    }
}

/// The travel-cost oracle a simulation run should query: the scenario's
/// oracle, wrapped in a [`CachedOracle`] when
/// [`ScenarioParams::cost_cache`](watter_workload::ScenarioParams) is set.
/// Answers are bit-identical either way.
pub fn sim_oracle(scenario: &Scenario) -> SimOracle {
    if scenario.params.cost_cache {
        SimOracle::Cached(CachedOracle::with_default_capacity(Arc::clone(
            &scenario.oracle,
        )))
    } else {
        SimOracle::Plain(Arc::clone(&scenario.oracle))
    }
}

/// Owned oracle handle for one simulation run (see [`sim_oracle`]).
pub enum SimOracle {
    /// The scenario's oracle queried directly.
    Plain(Arc<CityOracle>),
    /// The scenario's oracle behind a sharded memoization layer.
    Cached(CachedOracle<Arc<CityOracle>>),
}

impl SimOracle {
    /// Borrow as the trait object the engine consumes.
    pub fn as_dyn(&self) -> &dyn TravelBound {
        match self {
            SimOracle::Plain(o) => o.as_ref(),
            SimOracle::Cached(c) => c,
        }
    }

    /// Attach a recorder to the cache layer (sampled hit/miss latency
    /// stages plus eviction trace events). No-op on the plain oracle,
    /// whose latency probe is [`ObservedOracle`], applied by the runner.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        if let SimOracle::Cached(c) = self {
            c.set_recorder(recorder);
        }
    }

    /// Cache hit/miss/evict counters, when the cache is active.
    pub fn cache_stats(&self) -> Option<OracleCacheKpis> {
        match self {
            SimOracle::Plain(_) => None,
            SimOracle::Cached(c) => Some(OracleCacheKpis {
                hits: c.hits(),
                misses: c.misses(),
                evictions: c.evictions(),
            }),
        }
    }
}

/// Engine configuration derived from scenario parameters.
pub fn sim_config(scenario: &Scenario) -> SimConfig {
    SimConfig {
        check_period: scenario.params.check_period,
        weights: CostWeights::default(),
        drain_horizon: 4 * 3600,
        parallelism: scenario.params.parallelism,
    }
}

/// Drive a dispatcher without snapshot support (batch or stream only).
fn drive_plain<D: Dispatcher>(
    scenario: &Scenario,
    cfg: SimConfig,
    oracle: &dyn TravelBound,
    dispatcher: &mut D,
    mode: DriveMode,
    recorder: &Recorder,
) -> Result<RunOutput, String> {
    let orders = scenario.orders.clone();
    let workers = scenario.workers.clone();
    match mode {
        DriveMode::Batch => {
            let (measurements, kpis) =
                run_recorded(orders, workers, dispatcher, oracle, cfg, recorder.clone());
            Ok(RunOutput {
                measurements,
                kpis,
                ingest: None,
                cache: None,
            })
        }
        DriveMode::Stream => {
            let ingest_cfg = IngestConfig::for_nodes(scenario.graph.node_count());
            let out = run_stream_recorded(
                orders,
                workers,
                dispatcher,
                oracle,
                cfg,
                ingest_cfg,
                recorder.clone(),
            );
            Ok(RunOutput {
                measurements: out.measurements,
                kpis: out.kpis,
                ingest: Some(out.ingest),
                cache: None,
            })
        }
        DriveMode::SnapshotRoundtrip => Err(format!(
            "{} holds non-serializable runtime state; snapshot-roundtrip unsupported",
            dispatcher.name()
        )),
    }
}

/// Drive a snapshot-capable dispatcher; `make` builds a fresh instance
/// from the same configuration (called once per needed instance).
fn drive_snap<D: SnapshotDispatcher>(
    scenario: &Scenario,
    cfg: SimConfig,
    oracle: &dyn TravelBound,
    make: impl Fn() -> D,
    mode: DriveMode,
    recorder: &Recorder,
) -> Result<RunOutput, String> {
    if mode != DriveMode::SnapshotRoundtrip {
        return drive_plain(scenario, cfg, oracle, &mut make(), mode, recorder);
    }
    // Interleave arrivals with due checks so the snapshot lands mid-run
    // with a genuine tail (pending pool state *and* undelivered
    // arrivals), then serialize, restore into a fresh dispatcher, and
    // replay the tail.
    let orders = scenario.orders.clone();
    let mid = orders
        .first()
        .zip(orders.last())
        .map(|(f, l)| (f.release + l.release) / 2)
        .unwrap_or(0);
    let mut dispatcher = make();
    dispatcher.set_recorder(recorder.clone());
    let mut core = DispatchCore::new(scenario.workers.clone(), cfg);
    core.set_recorder(recorder.clone());
    let mut tail = Vec::new();
    let mut snapped: Option<DispatchSnapshot> = None;
    for order in orders {
        if snapped.is_some() {
            tail.push(order);
            continue;
        }
        while !core.is_drained() && core.next_due().is_some_and(|due| due < order.release) {
            core.step(Event::Check, &mut dispatcher, oracle);
        }
        if order.release > mid {
            snapped = Some(core.snapshot(&dispatcher));
            tail.push(order);
            continue;
        }
        core.step(Event::Arrive(order), &mut dispatcher, oracle);
    }
    let snap = snapped.unwrap_or_else(|| core.snapshot(&dispatcher));
    drop((core, dispatcher));

    // Full JSON round trip: prove the snapshot survives serialization,
    // not just cloning (f64 round-trips are exact — see the serde shim).
    let json = serde_json::to_string(&snap).map_err(|e| format!("snapshot serialize: {e:?}"))?;
    let snap: DispatchSnapshot =
        serde_json::from_str(&json).map_err(|e| format!("snapshot parse: {e:?}"))?;

    let mut dispatcher = make();
    dispatcher.set_recorder(recorder.clone());
    let mut core = DispatchCore::restore(&snap, &mut dispatcher)
        .map_err(|e| format!("snapshot restore: {e}"))?;
    // Re-attach after restore: the snapshot carries the journal's next
    // sequence number, so the resumed half keeps numbering where the
    // first half stopped.
    core.set_recorder(recorder.clone());
    for order in tail {
        while !core.is_drained() && core.next_due().is_some_and(|due| due < order.release) {
            core.step(Event::Check, &mut dispatcher, oracle);
        }
        core.step(Event::Arrive(order), &mut dispatcher, oracle);
    }
    core.step(Event::Close, &mut dispatcher, oracle);
    while !core.is_drained() {
        core.step(Event::Check, &mut dispatcher, oracle);
    }
    let (measurements, kpis) = core.finish();
    Ok(RunOutput {
        measurements,
        kpis,
        ingest: None,
        cache: None,
    })
}

/// Execute one algorithm on one scenario through `mode`.
///
/// Errors only when the combination is unsupported
/// ([`DriveMode::SnapshotRoundtrip`] with GDP/GAS, whose schedule state
/// is not serializable) or a snapshot fails to round-trip.
pub fn run_full(scenario: &Scenario, algo: Algo, mode: DriveMode) -> Result<RunOutput, String> {
    run_full_recorded(scenario, algo, mode, Recorder::disabled())
}

/// [`run_full`] with an observability recorder attached to every layer
/// (core, dispatcher, pool, oracle). The caller keeps the handle:
/// `recorder.snapshot()` after the run exposes counters, per-stage
/// latency percentiles and windowed KPIs; `recorder.drain_trace()`
/// yields the structured event journal. Passing
/// [`Recorder::disabled`] is exactly [`run_full`] — every hook
/// short-circuits and no probe wrapper is installed, so the disabled
/// path pays nothing.
pub fn run_full_recorded(
    scenario: &Scenario,
    algo: Algo,
    mode: DriveMode,
    recorder: Recorder,
) -> Result<RunOutput, String> {
    let cfg = sim_config(scenario);
    let mut sim_oracle = sim_oracle(scenario);
    sim_oracle.set_recorder(recorder.clone());
    // Sampled point-query latency probe, installed only when recording
    // and only on the uncached oracle (the cache layer times its own
    // hit/miss stages). Answers are unchanged either way.
    let observed;
    let oracle: &dyn TravelBound = match &sim_oracle {
        SimOracle::Plain(o) if recorder.is_enabled() => {
            let backend = scenario.oracle.describe();
            let backend = backend.split('[').next().unwrap_or_default();
            observed =
                ObservedOracle::new(Arc::clone(o), recorder.clone(), stage_for_backend(backend));
            &observed
        }
        _ => sim_oracle.as_dyn(),
    };
    fn watter<P: DecisionPolicy>(
        scenario: &Scenario,
        cfg: SimConfig,
        oracle: &dyn TravelBound,
        make_policy: impl Fn() -> P,
        mode: DriveMode,
        recorder: &Recorder,
    ) -> Result<RunOutput, String> {
        drive_snap(
            scenario,
            cfg,
            oracle,
            || WatterDispatcher::new(watter_config(scenario), make_policy()),
            mode,
            recorder,
        )
    }
    let out = match algo {
        Algo::Gdp => {
            let mut d = GdpDispatcher::new(GdpConfig::default(), &scenario.workers);
            drive_plain(scenario, cfg, oracle, &mut d, mode, &recorder)
        }
        Algo::Gas => {
            let mut d = GasDispatcher::new(GasConfig {
                batch_window: scenario.params.check_period.max(5),
                max_group_size: scenario.params.max_capacity as usize,
                beam_width: 8,
            });
            drive_plain(scenario, cfg, oracle, &mut d, mode, &recorder)
        }
        Algo::NonSharing => drive_snap(
            scenario,
            cfg,
            oracle,
            NonSharingDispatcher::new,
            mode,
            &recorder,
        ),
        Algo::WatterOnline => watter(scenario, cfg, oracle, || OnlinePolicy, mode, &recorder),
        Algo::WatterTimeout => watter(
            scenario,
            cfg,
            oracle,
            || TimeoutPolicy {
                check_period: cfg.check_period,
            },
            mode,
            &recorder,
        ),
        Algo::WatterExpectGmm(gmm) => watter(
            scenario,
            cfg,
            oracle,
            || {
                let provider = watter_learn::GmmThresholdProvider::from_gmm((*gmm).clone());
                ThresholdPolicy::new(provider, cfg.check_period)
            },
            mode,
            &recorder,
        ),
        Algo::WatterExpectValue(vf) => watter(
            scenario,
            cfg,
            oracle,
            || ThresholdPolicy::new(ArcProvider(Arc::clone(&vf)), cfg.check_period),
            mode,
            &recorder,
        ),
        Algo::WatterConstant(theta) => watter(
            scenario,
            cfg,
            oracle,
            || ThresholdPolicy::new(watter_strategy::ConstantThreshold(theta), cfg.check_period),
            mode,
            &recorder,
        ),
        Algo::WatterOnlineCancel(model) => drive_snap(
            scenario,
            cfg,
            oracle,
            || {
                let mut wcfg = watter_config(scenario);
                wcfg.cancellation = model;
                WatterDispatcher::new(wcfg, OnlinePolicy)
            },
            mode,
            &recorder,
        ),
    };
    // Attach the cache counters observed during the run (None when the
    // cost cache was off), and mirror the exact totals into the
    // registry — the sampled hit/miss latency stages only see 1 in
    // `SAMPLE_EVERY` queries.
    out.map(|mut out| {
        out.cache = sim_oracle.cache_stats();
        if let Some(c) = out.cache {
            recorder.set_at_least(Counter::CacheHits, c.hits);
            recorder.set_at_least(Counter::CacheMisses, c.misses);
            recorder.set_at_least(Counter::CacheEvictions, c.evictions);
        }
        out
    })
}

/// Execute one algorithm on one scenario, returning full measurements
/// (batch driver).
pub fn run_measured(scenario: &Scenario, algo: Algo) -> Measurements {
    run_full(scenario, algo, DriveMode::Batch)
        .expect("batch mode is supported by every algorithm")
        .measurements
}

/// Execute one algorithm and summarize into [`RunStats`].
pub fn run_algorithm(scenario: &Scenario, algo: Algo) -> RunStats {
    RunStats::from(&run_measured(scenario, algo))
}

/// Shared-ownership wrapper so a trained value function can serve many
/// sweep points without cloning network weights.
pub struct ArcProvider(pub Arc<ValueFunction>);

impl watter_strategy::ThresholdProvider for ArcProvider {
    fn threshold(
        &self,
        order: &watter_core::Order,
        ctx: &watter_strategy::DecisionContext<'_>,
    ) -> f64 {
        self.0.threshold(order, ctx)
    }
}
