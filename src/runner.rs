//! One-call experiment runner.
//!
//! Maps an algorithm name to a configured dispatcher and executes it on a
//! [`Scenario`], returning the paper's four measurements. This is the unit
//! of work of every table and figure reproduction.

use std::sync::Arc;
use watter_baselines::{GasConfig, GasDispatcher, GdpConfig, GdpDispatcher, NonSharingDispatcher};
use watter_core::{CostWeights, Measurements, RunStats, TravelBound};
use watter_learn::ValueFunction;
use watter_pool::{cliques::CliqueLimits, PlanLimits, PoolConfig, SpatialPrune};
use watter_road::{CachedOracle, CityOracle};
use watter_sim::{run, SimConfig, WatterConfig, WatterDispatcher};
use watter_strategy::{OnlinePolicy, ThresholdPolicy, TimeoutPolicy};
use watter_workload::Scenario;

/// The algorithms compared in the paper's evaluation.
pub enum Algo {
    /// GDP greedy insertion \[9\].
    Gdp,
    /// GAS batch additive-tree grouping \[2\].
    Gas,
    /// Non-sharing sequential baseline (Example 1).
    NonSharing,
    /// WATTER with the dispatch-ASAP policy.
    WatterOnline,
    /// WATTER with the dispatch-as-late-as-possible policy.
    WatterTimeout,
    /// WATTER-expect with a GMM-optimal threshold (Section V-C, no RL).
    WatterExpectGmm(Arc<watter_learn::Gmm>),
    /// WATTER-expect with the learned value function (Section VI).
    WatterExpectValue(Arc<ValueFunction>),
    /// WATTER-expect with a constant threshold (ablation: the base case of
    /// Section V-A before any learning).
    WatterConstant(f64),
    /// WATTER-online under an explicit rider-cancellation model
    /// (robustness ablation; Section VI-A treats cancellation as implicit
    /// expiration).
    WatterOnlineCancel(watter_sim::CancellationModel),
}

impl Algo {
    /// Display name matching the paper's legend.
    pub fn name(&self) -> &'static str {
        match self {
            Algo::Gdp => "GDP",
            Algo::Gas => "GAS",
            Algo::NonSharing => "NonSharing",
            Algo::WatterOnline => "WATTER-online",
            Algo::WatterTimeout => "WATTER-timeout",
            Algo::WatterExpectGmm(_) => "WATTER-expect-gmm",
            Algo::WatterExpectValue(_) => "WATTER-expect",
            Algo::WatterConstant(_) => "WATTER-const",
            Algo::WatterOnlineCancel(_) => "WATTER-online+cancel",
        }
    }
}

/// Pool configuration derived from scenario parameters.
pub fn pool_config(scenario: &Scenario) -> PoolConfig {
    PoolConfig {
        limits: PlanLimits {
            capacity: scenario.params.max_capacity,
        },
        clique: CliqueLimits {
            max_group_size: scenario.params.max_capacity as usize,
            max_neighbors: 12,
        },
        weights: CostWeights::default(),
    }
}

/// WATTER dispatcher configuration derived from scenario parameters.
///
/// Pool inserts always use spatial candidate pruning (bit-identical to the
/// full scan, strictly less work — see `watter_pool::spatial`), bucketing
/// pooled orders with the same grid the snapshots use.
pub fn watter_config(scenario: &Scenario) -> WatterConfig {
    WatterConfig {
        pool: pool_config(scenario),
        grid: scenario.grid.clone(),
        check_period: scenario.params.check_period,
        cancellation: watter_sim::CancellationModel::OFF,
        cancel_seed: scenario.params.seed,
        spatial: Some(SpatialPrune::for_graph(
            &scenario.graph,
            scenario.grid.clone(),
        )),
        parallelism: scenario.params.parallelism,
    }
}

/// The travel-cost oracle a simulation run should query: the scenario's
/// oracle, wrapped in a [`CachedOracle`] when
/// [`ScenarioParams::cost_cache`](watter_workload::ScenarioParams) is set.
/// Answers are bit-identical either way.
pub fn sim_oracle(scenario: &Scenario) -> SimOracle {
    if scenario.params.cost_cache {
        SimOracle::Cached(CachedOracle::with_default_capacity(Arc::clone(
            &scenario.oracle,
        )))
    } else {
        SimOracle::Plain(Arc::clone(&scenario.oracle))
    }
}

/// Owned oracle handle for one simulation run (see [`sim_oracle`]).
pub enum SimOracle {
    /// The scenario's oracle queried directly.
    Plain(Arc<CityOracle>),
    /// The scenario's oracle behind a sharded memoization layer.
    Cached(CachedOracle<Arc<CityOracle>>),
}

impl SimOracle {
    /// Borrow as the trait object the engine consumes.
    pub fn as_dyn(&self) -> &dyn TravelBound {
        match self {
            SimOracle::Plain(o) => o.as_ref(),
            SimOracle::Cached(c) => c,
        }
    }

    /// Cache `(hits, misses)` counters, when the cache is active.
    pub fn cache_stats(&self) -> Option<(u64, u64)> {
        match self {
            SimOracle::Plain(_) => None,
            SimOracle::Cached(c) => Some((c.hits(), c.misses())),
        }
    }
}

/// Engine configuration derived from scenario parameters.
pub fn sim_config(scenario: &Scenario) -> SimConfig {
    SimConfig {
        check_period: scenario.params.check_period,
        weights: CostWeights::default(),
        drain_horizon: 4 * 3600,
        parallelism: scenario.params.parallelism,
    }
}

/// Execute one algorithm on one scenario, returning full measurements.
pub fn run_measured(scenario: &Scenario, algo: Algo) -> Measurements {
    let cfg = sim_config(scenario);
    let orders = scenario.orders.clone();
    let workers = scenario.workers.clone();
    let sim_oracle = sim_oracle(scenario);
    let oracle = sim_oracle.as_dyn();
    match algo {
        Algo::Gdp => {
            let mut d = GdpDispatcher::new(GdpConfig::default(), &workers);
            run(orders, workers, &mut d, oracle, cfg)
        }
        Algo::Gas => {
            let mut d = GasDispatcher::new(GasConfig {
                batch_window: scenario.params.check_period.max(5),
                max_group_size: scenario.params.max_capacity as usize,
                beam_width: 8,
            });
            run(orders, workers, &mut d, oracle, cfg)
        }
        Algo::NonSharing => {
            let mut d = NonSharingDispatcher::new();
            run(orders, workers, &mut d, oracle, cfg)
        }
        Algo::WatterOnline => {
            let mut d = WatterDispatcher::new(watter_config(scenario), OnlinePolicy);
            run(orders, workers, &mut d, oracle, cfg)
        }
        Algo::WatterTimeout => {
            let mut d = WatterDispatcher::new(
                watter_config(scenario),
                TimeoutPolicy {
                    check_period: cfg.check_period,
                },
            );
            run(orders, workers, &mut d, oracle, cfg)
        }
        Algo::WatterExpectGmm(gmm) => {
            let provider = watter_learn::GmmThresholdProvider::from_gmm((*gmm).clone());
            let mut d = WatterDispatcher::new(
                watter_config(scenario),
                ThresholdPolicy::new(provider, cfg.check_period),
            );
            run(orders, workers, &mut d, oracle, cfg)
        }
        Algo::WatterExpectValue(vf) => {
            let mut d = WatterDispatcher::new(
                watter_config(scenario),
                ThresholdPolicy::new(ArcProvider(vf), cfg.check_period),
            );
            run(orders, workers, &mut d, oracle, cfg)
        }
        Algo::WatterConstant(theta) => {
            let mut d = WatterDispatcher::new(
                watter_config(scenario),
                ThresholdPolicy::new(watter_strategy::ConstantThreshold(theta), cfg.check_period),
            );
            run(orders, workers, &mut d, oracle, cfg)
        }
        Algo::WatterOnlineCancel(model) => {
            let mut wcfg = watter_config(scenario);
            wcfg.cancellation = model;
            let mut d = WatterDispatcher::new(wcfg, OnlinePolicy);
            run(orders, workers, &mut d, oracle, cfg)
        }
    }
}

/// Execute one algorithm and summarize into [`RunStats`].
pub fn run_algorithm(scenario: &Scenario, algo: Algo) -> RunStats {
    RunStats::from(&run_measured(scenario, algo))
}

/// Shared-ownership wrapper so a trained value function can serve many
/// sweep points without cloning network weights.
pub struct ArcProvider(pub Arc<ValueFunction>);

impl watter_strategy::ThresholdProvider for ArcProvider {
    fn threshold(
        &self,
        order: &watter_core::Order,
        ctx: &watter_strategy::DecisionContext<'_>,
    ) -> f64 {
        self.0.threshold(order, ctx)
    }
}
