//! The full WATTER training pipeline (Sections V-C + VI-B).
//!
//! 1. **History collection** — run the pooling framework with the online
//!    policy on a *training* scenario (a different day/seed than
//!    evaluation) and log every served order's realized extra time;
//! 2. **Distribution fitting** — fit a GMM to the extra-time history and
//!    derive per-order optimal thresholds `θ*` (Algorithm 3);
//! 3. **Experience generation** — re-run the framework with the GMM
//!    threshold policy, recording MDP transitions into replay memory;
//! 4. **Value-function training** — DQN-style training with the combined
//!    loss `ω·loss_td + (1 − ω)·loss_tg`;
//! 5. the result is a [`ValueFunction`] usable as WATTER-expect's
//!    threshold provider.

use crate::runner::{sim_config, watter_config};
use watter_core::{CostWeights, Dur, EnvSnapshot, Order, Ts};
use watter_learn::{
    Gmm, GmmThresholdProvider, StateFeaturizer, TrainerConfig, TransitionRecorder, ValueFunction,
    ValueTrainer,
};
use watter_sim::{run, WatterDispatcher};
use watter_strategy::{OnlinePolicy, PoolObserver, ThresholdPolicy};
use watter_workload::Scenario;

/// Pipeline hyper-parameters.
#[derive(Clone, Debug)]
pub struct TrainingConfig {
    /// GMM mixture components (Section V-C).
    pub gmm_components: usize,
    /// EM iterations.
    pub em_iters: usize,
    /// Replay memory capacity.
    pub replay_capacity: usize,
    /// Gradient steps of value-function training.
    pub train_steps: usize,
    /// DQN trainer settings (γ, ω, batch size, target sync, Adam).
    pub trainer: TrainerConfig,
}

impl Default for TrainingConfig {
    fn default() -> Self {
        Self {
            gmm_components: 3,
            em_iters: 40,
            replay_capacity: 200_000,
            train_steps: 600,
            trainer: TrainerConfig::default(),
        }
    }
}

/// Artifacts of the offline phase.
pub struct TrainedWatter {
    /// The fitted extra-time mixture.
    pub gmm: Gmm,
    /// The trained value function (`θ = p − V(s)`).
    pub value: ValueFunction,
    /// Training-loss trace (appendix-style convergence curves).
    pub losses: Vec<f32>,
    /// Number of extra-time history samples collected in phase 1.
    pub history_len: usize,
    /// Number of transitions recorded in phase 3.
    pub transitions: usize,
}

/// Observer logging realized extra times of served orders (phase 1).
#[derive(Default)]
struct HistoryObserver {
    weights: CostWeights,
    extra_times: Vec<f64>,
}

impl PoolObserver for HistoryObserver {
    fn on_wait(&mut self, _: &Order, _: Ts, _: &EnvSnapshot) {}

    fn on_dispatch(&mut self, order: &Order, detour: Dur, now: Ts, _: &EnvSnapshot) {
        self.extra_times
            .push(self.weights.extra_time(detour, order.response_at(now)));
    }

    fn on_expire(&mut self, _: &Order, _: Ts, _: &EnvSnapshot) {}
}

/// Run the full offline pipeline on a training scenario.
pub fn train(training: &Scenario, cfg: &TrainingConfig) -> TrainedWatter {
    let sim_cfg = sim_config(training);

    // Phase 1: extra-time history under the online policy.
    let mut collector = WatterDispatcher::with_observer(
        watter_config(training),
        OnlinePolicy,
        HistoryObserver::default(),
    );
    run(
        training.orders.clone(),
        training.workers.clone(),
        &mut collector,
        training.oracle.as_ref(),
        sim_cfg,
    );
    let history = collector.into_observer().extra_times;

    // Phase 2: GMM fit (Algorithm 3 line 1).
    let gmm = Gmm::fit(&history, cfg.gmm_components, cfg.em_iters);

    // Phase 3: experience generation under the GMM threshold policy.
    let featurizer = StateFeaturizer::new(training.grid.clone(), training.params.check_period);
    let recorder = TransitionRecorder::new(featurizer, Some(gmm.clone()), cfg.replay_capacity);
    let mut generator = WatterDispatcher::with_observer(
        watter_config(training),
        ThresholdPolicy::new(
            GmmThresholdProvider::from_gmm(gmm.clone()),
            sim_cfg.check_period,
        ),
        recorder,
    );
    run(
        training.orders.clone(),
        training.workers.clone(),
        &mut generator,
        training.oracle.as_ref(),
        sim_cfg,
    );
    let (memory, featurizer) = generator.into_observer().into_parts();

    // Phase 4: value-function training.
    let mut trainer = ValueTrainer::new(featurizer.dim(), cfg.trainer);
    trainer.train(&memory, cfg.train_steps);
    let losses = trainer.loss_history.clone();
    let transitions = memory.len();
    let value = ValueFunction::new(trainer.into_network(), featurizer);

    TrainedWatter {
        gmm,
        value,
        losses,
        history_len: history.len(),
        transitions,
    }
}
