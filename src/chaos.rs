//! Deterministic chaos harness: kill the daemon, recover it, prove
//! nothing changed.
//!
//! [`run_chaos`] executes the same faulted order stream twice:
//!
//! 1. the **reference** run — an uninterrupted daemon with the plan's
//!    *process* faults stripped ([`FaultPlan::input_only`] semantics: the
//!    input faults are already baked into the shared line stream by
//!    [`fault_lines`], so both runs consume identical bytes);
//! 2. the **chaos** run — a checkpointing daemon that crashes where the
//!    plan says, optionally has its newest checkpoint torn or bit-flipped
//!    at crash time, suffers the plan's transient checkpoint-IO failures,
//!    and is then resumed from the newest *valid* generation and re-fed
//!    the tail of the stream.
//!
//! The recovery contract ([`ChaosOutcome::is_consistent`], enforced by
//! `tests/chaos.rs` and the `reproduce -- chaos` study): the recovered
//! run's measurements, KPIs (modulo wall-clock timing), ingest counters
//! and robustness counters are **bit-identical** to the reference run's,
//! for arbitrary seeded crash points — including when the newest
//! checkpoint is the corrupted one and recovery must fall back a
//! generation.

use crate::runner::watter_config;
use serde::Serialize;
use std::path::Path;
use watter_core::{FaultPlan, Kpis, Measurements, RobustnessReport};
use watter_sim::{
    fault_lines, BackpressurePolicy, CheckpointError, CheckpointStore, Daemon, DaemonConfig,
    DaemonError, DegradableDispatcher, FeedOutcome, IngestConfig, IngestStats, SnapshotDispatcher,
};
use watter_strategy::OnlinePolicy;
use watter_workload::Scenario;

/// One chaos experiment: the fault schedule plus the daemon's knobs.
#[derive(Clone, Copy, Debug)]
pub struct ChaosSpec {
    /// The full fault schedule. Input faults shape the shared line
    /// stream; process faults (crash / corruption / IO errors) hit only
    /// the chaos run.
    pub fault: FaultPlan,
    /// Backpressure policy for *both* runs.
    pub policy: BackpressurePolicy,
    /// Backlog watermark engaging backpressure.
    pub high_watermark: usize,
    /// Backlog watermark releasing backpressure.
    pub low_watermark: usize,
    /// Checkpoint cadence in consumed lines (0 = event trigger off).
    pub checkpoint_every_events: u64,
    /// Checkpoint generations to retain.
    pub keep: usize,
}

impl Default for ChaosSpec {
    fn default() -> Self {
        Self {
            fault: FaultPlan::NONE,
            policy: BackpressurePolicy::Block,
            high_watermark: usize::MAX,
            low_watermark: 0,
            checkpoint_every_events: 8,
            keep: 3,
        }
    }
}

/// Final accounting of one daemon run inside the harness.
#[derive(Clone, Debug, Serialize)]
pub struct ChaosRun {
    /// The paper's measurements.
    pub measurements: Measurements,
    /// The KPI accumulator.
    pub kpis: Kpis,
    /// Ingest/validation counters.
    pub ingest: IngestStats,
    /// Backpressure consequence counters.
    pub robustness: RobustnessReport,
    /// Input lines consumed in total.
    pub lines_consumed: u64,
}

/// Outcome of a chaos experiment (see the module docs).
#[derive(Clone, Debug, Serialize)]
pub struct ChaosOutcome {
    /// The uninterrupted reference run.
    pub reference: ChaosRun,
    /// The crashed-and-recovered run (or the same uninterrupted run when
    /// the plan schedules no crash).
    pub recovered: ChaosRun,
    /// Line index the crash fired after, if it fired.
    pub crashed_at: Option<u64>,
    /// Replay cursor of the checkpoint recovery restored from (`0` when
    /// the crash predated every checkpoint and recovery restarted from
    /// scratch).
    pub resumed_from: Option<u64>,
    /// Checkpoint generations recovery had to skip as corrupt.
    pub discarded_generations: u64,
}

impl ChaosOutcome {
    /// The recovery contract: everything deterministic matches bit for
    /// bit between the reference and the recovered run.
    pub fn is_consistent(&self) -> bool {
        self.recovered.measurements.without_timing() == self.reference.measurements.without_timing()
            && self.recovered.kpis.without_timing() == self.reference.kpis.without_timing()
            && self.recovered.ingest == self.reference.ingest
            && self.recovered.robustness == self.reference.robustness
            && self.recovered.lines_consumed == self.reference.lines_consumed
    }
}

fn daemon_config(spec: &ChaosSpec, fault: FaultPlan) -> DaemonConfig {
    DaemonConfig {
        checkpoint_every_events: spec.checkpoint_every_events,
        checkpoint_interval: 0,
        policy: spec.policy,
        high_watermark: spec.high_watermark,
        low_watermark: spec.low_watermark,
        fault,
    }
}

fn drain_into_run<D: SnapshotDispatcher + DegradableDispatcher>(
    mut daemon: Daemon<'_, D>,
) -> ChaosRun {
    daemon.close_and_drain();
    let out = daemon.finish();
    ChaosRun {
        measurements: out.measurements,
        kpis: out.kpis,
        ingest: out.ingest,
        robustness: out.robustness,
        lines_consumed: out.lines_consumed,
    }
}

/// Run the chaos experiment on `scenario` with a dispatcher built by
/// `make` (called once per daemon instance — reference, chaos, recovery —
/// so each starts from identical construction-time configuration).
/// `ckpt_dir` receives the chaos run's checkpoint generations; it is
/// wiped first so repeated invocations are independent.
pub fn run_chaos_with<D, F>(
    scenario: &Scenario,
    spec: &ChaosSpec,
    ckpt_dir: &Path,
    make: F,
) -> Result<ChaosOutcome, String>
where
    D: SnapshotDispatcher + DegradableDispatcher,
    F: Fn() -> D,
{
    let lines = fault_lines(&scenario.orders, &spec.fault);
    let sim = crate::runner::sim_config(scenario);
    let owned_oracle = crate::runner::sim_oracle(scenario);
    let oracle = owned_oracle.as_dyn();
    let ingest_cfg = IngestConfig::for_nodes(scenario.graph.node_count());
    let workers = || scenario.workers.clone();

    // Reference: uninterrupted, no persistence, no process faults.
    let mut reference = Daemon::new(
        workers(),
        sim,
        make(),
        oracle,
        ingest_cfg,
        daemon_config(spec, FaultPlan::NONE),
        None,
    );
    for line in &lines {
        if matches!(reference.feed_line(line), FeedOutcome::Crashed) {
            return Err("reference run must not crash".into());
        }
    }
    let reference = drain_into_run(reference);

    // Chaos run: checkpointing daemon under the full process-fault plan.
    let _ = std::fs::remove_dir_all(ckpt_dir);
    let store = CheckpointStore::open(ckpt_dir, spec.keep, spec.fault)
        .map_err(|e| format!("open store: {e}"))?;
    let mut chaos = Daemon::new(
        workers(),
        sim,
        make(),
        oracle,
        ingest_cfg,
        daemon_config(spec, spec.fault),
        Some(store),
    );
    let mut crashed_at = None;
    for (i, line) in lines.iter().enumerate() {
        if matches!(chaos.feed_line(line), FeedOutcome::Crashed) {
            crashed_at = Some(i as u64 + 1);
            break;
        }
    }
    let Some(crash_line) = crashed_at else {
        // No crash scheduled (or it fell past the stream): the chaos run
        // itself is the recovered run.
        let recovered = drain_into_run(chaos);
        return Ok(ChaosOutcome {
            reference,
            recovered,
            crashed_at: None,
            resumed_from: None,
            discarded_generations: 0,
        });
    };
    // The power cut: abandon the daemon mid-flight. No final checkpoint,
    // no drain — only what the store already persisted survives.
    drop(chaos);

    // Recovery: newest valid generation, re-feed the tail.
    let store = CheckpointStore::open(ckpt_dir, spec.keep, FaultPlan::NONE)
        .map_err(|e| format!("reopen store: {e}"))?;
    let recovery_cfg = daemon_config(spec, FaultPlan::NONE);
    let mut scratch_discarded = 0u64;
    let (mut recovered, resumed_from) =
        match Daemon::resume(store, make(), oracle, ingest_cfg, recovery_cfg) {
            Ok(Some(daemon)) => {
                let cursor = daemon.lines_consumed();
                (daemon, Some(cursor))
            }
            Ok(None) => {
                // Crash predated every checkpoint: restart from scratch.
                (
                    Daemon::new(
                        workers(),
                        sim,
                        make(),
                        oracle,
                        ingest_cfg,
                        recovery_cfg,
                        None,
                    ),
                    Some(0),
                )
            }
            Err(DaemonError::Checkpoint(CheckpointError::NoValidCheckpoint)) => {
                // Every on-disk generation is corrupt — possible when the
                // only checkpoint written before the crash is the one the
                // crash corrupted. Restart from scratch, counting them all
                // as discarded.
                scratch_discarded = std::fs::read_dir(ckpt_dir)
                    .map(|d| d.count() as u64)
                    .unwrap_or(0);
                (
                    Daemon::new(
                        workers(),
                        sim,
                        make(),
                        oracle,
                        ingest_cfg,
                        recovery_cfg,
                        None,
                    ),
                    Some(0),
                )
            }
            Err(e) => {
                return Err(format!("recovery failed after crash at {crash_line}: {e}"));
            }
        };
    let skip = recovered.lines_consumed() as usize;
    for line in &lines[skip..] {
        if matches!(recovered.feed_line(line), FeedOutcome::Crashed) {
            return Err("recovered run must not crash again".into());
        }
    }
    let discarded = recovered
        .store_ops()
        .map(|ops| ops.discarded)
        .unwrap_or(scratch_discarded);
    let recovered = drain_into_run(recovered);
    Ok(ChaosOutcome {
        reference,
        recovered,
        crashed_at,
        resumed_from,
        discarded_generations: discarded,
    })
}

/// [`run_chaos_with`] using the WATTER online dispatcher (the default
/// algorithm of every other harness in this repo).
pub fn run_chaos(
    scenario: &Scenario,
    spec: &ChaosSpec,
    ckpt_dir: &Path,
) -> Result<ChaosOutcome, String> {
    run_chaos_with(scenario, spec, ckpt_dir, || {
        watter_sim::WatterDispatcher::new(watter_config(scenario), OnlinePolicy)
    })
}
