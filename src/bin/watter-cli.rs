//! `watter-cli` — run any algorithm on any synthetic scenario from the
//! command line, optionally training and persisting a value function.
//!
//! ```text
//! watter-cli run   [--profile nyc|cdc|xia] [--algo gdp|gas|nonshare|online|timeout|expect]
//!                  [--orders N] [--workers M] [--tau F] [--kw K] [--eta F]
//!                  [--city-side B] [--oracle auto|dense|alt|ch] [--landmarks K]
//!                  [--dense-limit N] [--import PATH]
//!                  [--cost-cache] [--threads T] [--shards S]
//!                  [--stream] [--snapshot-roundtrip] [--kpis json|PATH]
//!                  [--obs json|PATH] [--obs-window SECS] [--trace PATH]
//!                  [--seed S] [--json PATH]
//! watter-cli orders [scenario flags] [--fault-seed S] [--fault-malformed-every K]
//!                   [--fault-delay-every K] [--fault-delay-slots N] [--out PATH]
//! watter-cli graph [scenario flags] [--out PATH]
//! watter-cli train [--profile nyc|cdc|xia] [--out model.json] [--steps N]
//! watter-cli promcheck FILE
//! ```
//!
//! `orders` dumps the scenario's order stream as newline-delimited JSON —
//! the wire format `watter-daemon` consumes — optionally with
//! deterministic input faults baked in (see `watter_core::FaultPlan`).
//!
//! `graph` exports the scenario's road network in the plain-text
//! interchange format (`nodes N` / `v id x y` / `e from to travel`);
//! `--import PATH` runs any subcommand's scenario on such a file instead
//! of the synthetic city — the round trip is exact, so
//! `graph --out c.graph` followed by `run --import c.graph` reproduces
//! the synthetic run bit for bit.
//!
//! `--oracle` picks the travel-cost backend: the dense all-pairs table
//! (`n² × 4` bytes, O(1) queries), landmark-guided A* (`alt`, exact point
//! queries from `O(k·n)` memory), the contraction hierarchy (`ch`, exact
//! microsecond point queries after preprocessing — the right choice for
//! 10⁵-node cities), or by node count (`auto`, the default; the
//! dense-vs-CH threshold is `--dense-limit`, default 8192).
//!
//! `--cost-cache` wraps the oracle in the sharded memoization layer for
//! the simulation run — dispatch outcomes are bit-identical, only faster;
//! worthwhile whenever the ALT backend is active.
//!
//! `--threads T` runs the dispatch engine's pure computation (pool edge
//! evaluation, clique search, fleet scans) on `T` scoped threads
//! (`0` = all cores); `--shards S` partitions the order pool into `S`
//! grid-row-band shards. Outcomes are bit-identical for every setting —
//! these flags only change wall-clock time.
//!
//! `--algo expect` trains a value function on a sibling "day" first (or
//! loads one via `--model model.json`).
//!
//! `--stream` feeds the scenario through the ingest/validation front end
//! and the streaming driver instead of the batch driver (identical
//! results; ingest counters go to stderr). `--snapshot-roundtrip`
//! serializes the run to JSON mid-stream, restores it into a fresh
//! dispatcher and replays the tail — results again identical (stderr
//! notes the round trip). `--kpis json` prints the KPI report (service
//! rate, extra-time distribution, fleet utilization, per-tick latency
//! percentiles) as JSON on stdout; any other value is a path to write it
//! to.
//!
//! `--obs` turns on the observability registry and emits the combined
//! metrics report (KPIs + counters, per-stage latency percentiles,
//! windowed KPIs) as JSON — to stdout with `--obs json`, else to the
//! given path. `--trace PATH` (implies `--obs`) appends the structured
//! event journal to `PATH` as JSON lines, one record per line. The stat
//! block on stdout is bit-identical with or without these flags: only
//! wall-clock stage timings differ run to run.
//!
//! `promcheck FILE` validates a Prometheus text-exposition file (such as
//! the `.prom` file `watter-daemon` writes for a `#metrics` control
//! line) with the crate's own parser, exiting non-zero if any line is
//! malformed.

use std::collections::HashMap;
use std::sync::Arc;
use watter::cli::{
    append_trace_jsonl, fault_plan_of, params_of, parse_flags, print_stats, recorder_of,
};
use watter::prelude::*;
use watter::road::{export_graph, import_graph};
use watter::runner::{run_full_recorded, Algo, DriveMode};
use watter::sim::MetricsReport;

/// Build the scenario: on the profile's synthetic city by default, or —
/// with `--import PATH` — on a road network loaded from the plain-text
/// interchange format (`watter::road::import`). Demand and fleet
/// generation are identical code either way, so any scenario flag set
/// runs unchanged on an imported city.
fn build_scenario(flags: &HashMap<String, String>, params: ScenarioParams) -> Scenario {
    match flags.get("import") {
        Some(path) => {
            let graph = import_graph(path).unwrap_or_else(|e| {
                eprintln!("import {path}: {e}");
                std::process::exit(1);
            });
            Scenario::build_on_graph(params, Arc::new(graph))
        }
        None => Scenario::build(params),
    }
}

fn cmd_run(flags: HashMap<String, String>) {
    let params = params_of(&flags);
    let scenario = build_scenario(&flags, params.clone());
    let algo_name = flags
        .get("algo")
        .map(|s| s.as_str())
        .unwrap_or("online")
        .to_string();
    let algo = match algo_name.as_str() {
        "gdp" => Algo::Gdp,
        "gas" => Algo::Gas,
        "nonshare" => Algo::NonSharing,
        "online" => Algo::WatterOnline,
        "timeout" => Algo::WatterTimeout,
        "expect" => {
            let value = if let Some(path) = flags.get("model") {
                ValueFunction::load_json(std::path::Path::new(path)).unwrap_or_else(|e| {
                    eprintln!("failed to load model {path}: {e}");
                    std::process::exit(1);
                })
            } else {
                eprintln!("training value function (pass --model to reuse one) …");
                let mut tp = params.clone();
                tp.seed ^= 0xDEAD_BEEF;
                train(&Scenario::build(tp), &TrainingConfig::default()).value
            };
            Algo::WatterExpectValue(Arc::new(value))
        }
        other => {
            eprintln!("unknown algo `{other}`");
            std::process::exit(2);
        }
    };
    let mode = if flags.get("snapshot-roundtrip").map(|s| s.as_str()) == Some("true") {
        DriveMode::SnapshotRoundtrip
    } else if flags.get("stream").map(|s| s.as_str()) == Some("true") {
        DriveMode::Stream
    } else {
        DriveMode::Batch
    };
    let recorder = recorder_of(&flags);
    let out = run_full_recorded(&scenario, algo, mode, recorder.clone()).unwrap_or_else(|e| {
        eprintln!("run failed: {e}");
        std::process::exit(1);
    });
    // Extra drive-mode info goes to stderr so stdout stays diffable
    // against a plain batch run.
    if let Some(ing) = &out.ingest {
        eprintln!(
            "ingest        : admitted={} rejected={} peak-backlog={}",
            ing.admitted, ing.rejected, ing.peak_backlog
        );
    }
    if mode == DriveMode::SnapshotRoundtrip {
        eprintln!("snapshot      : mid-run JSON round trip ok");
    }
    let stats = RunStats::from(&out.measurements);
    print_stats(&params, &scenario.oracle.describe(), &algo_name, &stats);
    if let Some(path) = flags.get("json") {
        let s = serde_json::to_string_pretty(&stats).expect("serialize stats");
        std::fs::write(path, s).expect("write json");
        eprintln!("wrote {path}");
    }
    if let Some(dest) = flags.get("kpis") {
        let report = out.kpi_report();
        let s = serde_json::to_string_pretty(&report).expect("serialize kpis");
        if dest == "json" || dest == "true" {
            println!("{s}");
        } else {
            std::fs::write(dest, s).expect("write kpis");
            eprintln!("wrote {dest}");
        }
    }
    if let Some(dest) = flags.get("obs") {
        // Same shape the daemon's `#metrics` control line emits: the
        // KPI report plus the full registry snapshot (counters, gauges,
        // per-stage latency percentiles, windowed KPIs).
        let report = MetricsReport {
            kpis: out.kpi_report(),
            obs: recorder.snapshot(),
        };
        let s = serde_json::to_string_pretty(&report).expect("serialize metrics");
        if dest == "json" || dest == "true" {
            println!("{s}");
        } else {
            std::fs::write(dest, s).expect("write metrics");
            eprintln!("wrote {dest}");
        }
    }
    if let Some(path) = flags.get("trace") {
        let records = recorder.drain_trace();
        let n = records.len();
        append_trace_jsonl(path, &records).expect("write trace");
        eprintln!("wrote {path} ({n} trace records)");
    }
}

/// Dump the scenario's order stream as newline-delimited JSON — the wire
/// format `watter-daemon` consumes. The same scenario flags produce the
/// same workers/oracle in both binaries, so piping this output into the
/// daemon reproduces `watter-cli run` exactly. Fault flags
/// (`--fault-seed`, `--fault-malformed-every`, `--fault-delay-every`,
/// `--fault-delay-slots`) bake deterministic input faults into the lines.
fn cmd_orders(flags: HashMap<String, String>) {
    let params = params_of(&flags);
    let scenario = build_scenario(&flags, params);
    let plan = fault_plan_of(&flags);
    let lines = watter::sim::fault_lines(&scenario.orders, &plan).join("\n");
    match flags.get("out") {
        Some(path) => {
            std::fs::write(path, lines + "\n").expect("write orders");
            eprintln!("wrote {path}");
        }
        None => println!("{lines}"),
    }
}

/// Export the scenario's road network in the plain-text interchange
/// format (`watter-cli graph --out city.graph`). Round-trips exactly:
/// running any scenario with `--import` on the exported file reproduces
/// the synthetic-city run bit for bit.
fn cmd_graph(flags: HashMap<String, String>) {
    let params = params_of(&flags);
    let scenario = build_scenario(&flags, params);
    let text = export_graph(&scenario.graph);
    match flags.get("out") {
        Some(path) => {
            std::fs::write(path, &text).expect("write graph");
            eprintln!(
                "wrote {path} ({} nodes, {} edges)",
                scenario.graph.node_count(),
                scenario.graph.edge_count()
            );
        }
        None => print!("{text}"),
    }
}

fn cmd_train(flags: HashMap<String, String>) {
    let mut params = params_of(&flags);
    params.seed ^= 0xDEAD_BEEF;
    let training = Scenario::build(params);
    let mut cfg = TrainingConfig::default();
    if let Some(steps) = flags.get("steps").and_then(|s| s.parse().ok()) {
        cfg.train_steps = steps;
    }
    eprintln!("training …");
    let trained = train(&training, &cfg);
    eprintln!(
        "history={} transitions={} final-loss={:.1}",
        trained.history_len,
        trained.transitions,
        trained.losses.last().copied().unwrap_or(f32::NAN)
    );
    let out = flags
        .get("out")
        .cloned()
        .unwrap_or_else(|| "model.json".to_string());
    trained
        .value
        .save_json(std::path::Path::new(&out))
        .expect("save model");
    println!("saved value function to {out}");
}

/// Validate a Prometheus text-exposition file with the same parser the
/// test suite uses — the CI hook for the daemon's `#metrics` output.
fn cmd_promcheck(path: &str) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("read {path}: {e}");
        std::process::exit(1);
    });
    match watter::obs::parse_prometheus(&text) {
        Ok(samples) => println!("{path}: ok, {samples} samples"),
        Err(e) => {
            eprintln!("{path}: invalid Prometheus exposition: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(|s| s.as_str()) {
        Some("run") => cmd_run(parse_flags(&args[1..])),
        Some("orders") => cmd_orders(parse_flags(&args[1..])),
        Some("graph") => cmd_graph(parse_flags(&args[1..])),
        Some("train") => cmd_train(parse_flags(&args[1..])),
        Some("promcheck") if args.len() == 2 => cmd_promcheck(&args[1]),
        _ => {
            eprintln!(
                "usage: watter-cli <run|orders|graph|train|promcheck> [--flags]  (see --help in source)"
            );
            std::process::exit(2);
        }
    }
}
