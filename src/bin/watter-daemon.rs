//! `watter-daemon` — dispatch as a service: a long-lived process that
//! reads newline-delimited JSON orders from a pipe, file/FIFO or Unix
//! socket, dispatches them through the WATTER engine, checkpoints its
//! state for crash recovery, and answers live KPI queries.
//!
//! ```text
//! watter-daemon [scenario flags: --profile --orders --workers --seed
//!                --city-side --oracle --landmarks --cost-cache ...]
//!               [--algo online|timeout|nonshare]
//!               [--input PATH | --socket PATH]          (default: stdin)
//!               [--ckpt-dir DIR] [--ckpt-every N] [--ckpt-interval SECS]
//!               [--ckpt-keep N] [--resume]
//!               [--backpressure block|shed|degrade]
//!               [--high-watermark N] [--low-watermark N]
//!               [--fault-crash-after K] [--fault-corrupt torn|bitflip]
//!               [--fault-io-failures N]
//!               [--no-obs] [--obs-window SECS] [--trace PATH]
//!               [--json PATH] [--kpis PATH]
//! ```
//!
//! The scenario flags build the same workers/oracle/grid as `watter-cli
//! run` with identical flags; the order *stream* comes from the input
//! source (generate one with `watter-cli orders`). On end of input the
//! daemon closes the stream, drains, and prints the exact stat block
//! `watter-cli run` prints — so CI can diff a daemon run (even one
//! recovered from a crash) against the batch reference.
//!
//! Control lines on the input stream (prefix `#`):
//!
//! * `#kpis PATH` — write the live KPI report as JSON to `PATH`;
//! * `#metrics PATH` — write the live metrics report (KPIs + counters,
//!   per-stage latency percentiles, windowed KPIs) as JSON to `PATH`
//!   *and* the Prometheus text exposition to `PATH.prom`; with no path,
//!   print the JSON to stdout;
//! * `#checkpoint` — checkpoint immediately;
//! * `#close` — treat as end of input (useful over sockets, where the
//!   listener outlives any one client).
//!
//! The observability registry is on by default (`--no-obs` disables
//! it; `--obs-window` sets the windowed-KPI width in virtual seconds).
//! `--trace PATH` appends the structured event journal to `PATH` as
//! JSON lines, flushed while idle and on every control line; a resumed
//! daemon continues the sequence numbering its checkpoint carried, so
//! replayed events re-emit the *same* `seq` — consumers dedup by it.
//!
//! `SIGTERM` triggers a final checkpoint, a clean close-and-drain, the
//! stat block, exit 0. An injected crash (`--fault-crash-after`) exits
//! with code 42 *without* drain or final checkpoint — the simulated
//! power cut the chaos harness recovers from; `--resume` restores the
//! newest valid checkpoint generation from `--ckpt-dir` and skips the
//! already-consumed prefix of the re-fed input.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::time::Duration;
use watter::cli::{append_trace_jsonl, fault_plan_of, params_of, parse_flags, print_stats};
use watter::runner::{sim_config, sim_oracle, watter_config};
use watter_baselines::NonSharingDispatcher;
use watter_core::{FaultPlan, RunStats, TravelBound};
use watter_obs::{render_prometheus, Recorder};
use watter_sim::{
    BackpressurePolicy, CheckpointError, CheckpointStore, Daemon, DaemonConfig, DaemonError,
    DegradableDispatcher, FeedOutcome, IngestConfig, SnapshotDispatcher, WatterDispatcher,
};
use watter_strategy::{OnlinePolicy, TimeoutPolicy};
use watter_workload::Scenario;

/// Exit code of an injected crash — distinguishable from real failures
/// so scripted harnesses can assert the fault actually fired.
const CRASH_EXIT: i32 = 42;

/// The daemon's recorder: on by default (a long-lived service wants
/// its registry populated before anyone asks), `--no-obs` turns it
/// off, `--obs-window SECS` overrides the windowed-KPI width.
fn daemon_recorder(flags: &HashMap<String, String>) -> Recorder {
    if flags.get("no-obs").map(|s| s.as_str()) == Some("true") {
        return Recorder::disabled();
    }
    match flags.get("obs-window").and_then(|s| s.parse().ok()) {
        Some(secs) => Recorder::enabled_with_windows(secs),
        None => Recorder::enabled(),
    }
}

/// Drain the trace journal into the `--trace` file (no-op without the
/// flag). Called while the loop is idle and on every control line, so
/// the journal's bounded ring rarely overflows.
fn flush_trace(recorder: &Recorder, path: Option<&String>) {
    let Some(path) = path else { return };
    if let Err(e) = append_trace_jsonl(path, &recorder.drain_trace()) {
        eprintln!("write trace {path}: {e}");
    }
}

/// Set by the SIGTERM handler; the event loop polls it between lines.
static TERM: AtomicBool = AtomicBool::new(false);

extern "C" fn on_term(_sig: i32) {
    TERM.store(true, Ordering::SeqCst);
}

/// Register `on_term` for SIGTERM (15) via the libc `signal` symbol —
/// enough for a single flag store, with no need for a signal-handling
/// crate. The reader thread keeps blocking reads off the main thread, so
/// the flag is observed within one `recv_timeout` tick.
fn install_sigterm() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    unsafe {
        signal(15, on_term as extern "C" fn(i32) as *const () as usize);
    }
}

/// Spawn the reader thread for the chosen input source; lines arrive on
/// the returned channel, EOF closes it.
fn spawn_reader(flags: &HashMap<String, String>) -> mpsc::Receiver<String> {
    let (tx, rx) = mpsc::channel::<String>();
    let input = flags.get("input").cloned();
    let socket = flags.get("socket").cloned();
    std::thread::spawn(move || {
        let forward = |tx: &mpsc::Sender<String>, reader: &mut dyn Read| {
            for line in BufReader::new(reader).lines() {
                let Ok(line) = line else { break };
                if tx.send(line).is_err() {
                    break;
                }
            }
        };
        if let Some(path) = socket {
            let _ = std::fs::remove_file(&path);
            let listener = match std::os::unix::net::UnixListener::bind(&path) {
                Ok(l) => l,
                Err(e) => {
                    eprintln!("bind {path}: {e}");
                    return;
                }
            };
            // Serve clients sequentially until one sends `#close` (the
            // main loop ends the run on that control line; the channel
            // then disconnects and this thread winds down on next send).
            for stream in listener.incoming() {
                let Ok(mut stream) = stream else { continue };
                forward(&tx, &mut stream);
            }
        } else if let Some(path) = input {
            match std::fs::File::open(&path) {
                Ok(mut f) => forward(&tx, &mut f),
                Err(e) => eprintln!("open {path}: {e}"),
            }
        } else {
            forward(&tx, &mut std::io::stdin().lock());
        }
    });
    rx
}

fn daemon_config(flags: &HashMap<String, String>, fault: FaultPlan) -> DaemonConfig {
    let mut cfg = DaemonConfig {
        fault,
        ..DaemonConfig::default()
    };
    if let Some(n) = flags.get("ckpt-every").and_then(|s| s.parse().ok()) {
        cfg.checkpoint_every_events = n;
    }
    if let Some(s) = flags.get("ckpt-interval").and_then(|s| s.parse().ok()) {
        cfg.checkpoint_interval = s;
    }
    match flags.get("backpressure").map(|s| s.as_str()) {
        Some("block") | None => cfg.policy = BackpressurePolicy::Block,
        Some("shed") => cfg.policy = BackpressurePolicy::Shed,
        Some("degrade") => cfg.policy = BackpressurePolicy::Degrade,
        Some(other) => {
            eprintln!("unknown backpressure policy `{other}` (expected block|shed|degrade)");
            std::process::exit(2);
        }
    }
    if let Some(n) = flags.get("high-watermark").and_then(|s| s.parse().ok()) {
        cfg.high_watermark = n;
        cfg.low_watermark = n / 2;
    }
    if let Some(n) = flags.get("low-watermark").and_then(|s| s.parse().ok()) {
        cfg.low_watermark = n;
    }
    cfg
}

/// The daemon event loop, generic over the dispatcher family.
#[allow(clippy::too_many_arguments)]
fn serve<D: SnapshotDispatcher + DegradableDispatcher>(
    scenario: &Scenario,
    flags: &HashMap<String, String>,
    algo_name: &str,
    oracle: &dyn TravelBound,
    make: impl Fn() -> D,
) {
    let fault = fault_plan_of(flags);
    let cfg = daemon_config(flags, fault);
    let ingest_cfg = IngestConfig::for_nodes(scenario.graph.node_count());
    let keep = flags
        .get("ckpt-keep")
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    let open_store = || {
        flags.get("ckpt-dir").map(|dir| {
            CheckpointStore::open(std::path::Path::new(dir), keep, fault).unwrap_or_else(|e| {
                eprintln!("open checkpoint store {dir}: {e}");
                std::process::exit(1);
            })
        })
    };
    let fresh = |store| {
        Daemon::new(
            scenario.workers.clone(),
            sim_config(scenario),
            make(),
            oracle,
            ingest_cfg,
            cfg,
            store,
        )
    };

    let mut daemon = if flags.get("resume").map(|s| s.as_str()) == Some("true") {
        let Some(store) = open_store() else {
            eprintln!("--resume requires --ckpt-dir");
            std::process::exit(2);
        };
        match Daemon::resume(store, make(), oracle, ingest_cfg, cfg) {
            Ok(Some(daemon)) => {
                eprintln!(
                    "resumed       : {} lines already consumed",
                    daemon.lines_consumed()
                );
                daemon
            }
            Ok(None) => {
                eprintln!("resume        : no checkpoint found, starting fresh");
                fresh(open_store())
            }
            Err(DaemonError::Checkpoint(CheckpointError::NoValidCheckpoint)) => {
                eprintln!("resume        : every checkpoint generation corrupt, starting fresh");
                fresh(open_store())
            }
            Err(e) => {
                eprintln!("resume failed: {e}");
                std::process::exit(1);
            }
        }
    } else {
        fresh(open_store())
    };
    // Attach after (possible) resume: the checkpoint carries the trace
    // journal's next sequence number, and `set_recorder` resumes
    // numbering from it.
    daemon.set_recorder(daemon_recorder(flags));
    let trace_path = flags.get("trace").cloned();

    // On resume the daemon has already consumed a prefix of the stream;
    // the host re-feeds the whole input, so skip that many data lines.
    let mut skip = daemon.lines_consumed();
    let rx = spawn_reader(flags);
    'serve: loop {
        if TERM.load(Ordering::SeqCst) {
            eprintln!("sigterm       : final checkpoint, draining");
            if let Err(e) = daemon.checkpoint_now() {
                eprintln!("final checkpoint failed: {e}");
            }
            break 'serve;
        }
        let line = match rx.recv_timeout(Duration::from_millis(50)) {
            Ok(line) => line,
            Err(mpsc::RecvTimeoutError::Timeout) => {
                // Idle tick: a live tail of the trace file stays fresh.
                flush_trace(daemon.recorder(), trace_path.as_ref());
                continue;
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => break 'serve, // EOF
        };
        if let Some(ctl) = line.strip_prefix('#') {
            flush_trace(daemon.recorder(), trace_path.as_ref());
            let mut words = ctl.split_whitespace();
            match words.next() {
                Some("kpis") => {
                    let report = daemon.kpi_report();
                    let json =
                        serde_json::to_string_pretty(&report).expect("kpi report serializes");
                    match words.next() {
                        Some(path) => {
                            if let Err(e) = std::fs::write(path, json) {
                                eprintln!("write kpis {path}: {e}");
                            }
                        }
                        None => println!("{json}"),
                    }
                }
                Some("metrics") => {
                    let report = daemon.metrics_report();
                    let json =
                        serde_json::to_string_pretty(&report).expect("metrics report serializes");
                    match words.next() {
                        Some(path) => {
                            if let Err(e) = std::fs::write(path, json) {
                                eprintln!("write metrics {path}: {e}");
                            }
                            let prom_path = format!("{path}.prom");
                            if let Err(e) =
                                std::fs::write(&prom_path, render_prometheus(&report.obs))
                            {
                                eprintln!("write metrics {prom_path}: {e}");
                            }
                        }
                        None => println!("{json}"),
                    }
                }
                Some("checkpoint") => match daemon.checkpoint_now() {
                    Ok(Some(gen)) => eprintln!("checkpoint    : generation {gen}"),
                    Ok(None) => eprintln!("checkpoint    : no store configured"),
                    Err(e) => eprintln!("checkpoint failed: {e}"),
                },
                Some("close") => break 'serve,
                other => eprintln!("unknown control line {other:?}"),
            }
            continue;
        }
        if skip > 0 {
            skip -= 1;
            continue;
        }
        match daemon.feed_line(&line) {
            FeedOutcome::Crashed => {
                // The simulated power cut: no drain, no final checkpoint.
                eprintln!("injected crash after {} lines", daemon.lines_consumed());
                std::process::exit(CRASH_EXIT);
            }
            FeedOutcome::Rejected(e) => eprintln!("rejected line : {e}"),
            _ => {}
        }
    }

    daemon.close_and_drain();
    // Parity checkpoint on clean shutdown so a later `--resume` of a
    // finished run restarts from the drained state instead of replaying.
    if let Err(e) = daemon.checkpoint_now() {
        eprintln!("final checkpoint failed: {e}");
    }
    flush_trace(daemon.recorder(), trace_path.as_ref());
    let robustness = daemon.robustness();
    let ops = daemon.store_ops();
    let out = daemon.finish();
    eprintln!(
        "ingest        : admitted={} rejected={} malformed={} peak-backlog={}",
        out.ingest.admitted, out.ingest.rejected, out.ingest.malformed, out.ingest.peak_backlog
    );
    eprintln!(
        "robustness    : shed={} degraded={} blocked={}",
        robustness.shed, robustness.degraded, robustness.blocked
    );
    if let Some(ops) = ops {
        eprintln!(
            "checkpoints   : written={} retries={} discarded={} resumed-from={:?}",
            ops.written, ops.retries, ops.discarded, ops.resumed_from
        );
    }
    let stats = RunStats::from(&out.measurements);
    let params = params_of(flags);
    print_stats(&params, &scenario.oracle.describe(), algo_name, &stats);
    if let Some(path) = flags.get("json") {
        let s = serde_json::to_string_pretty(&stats).expect("serialize stats");
        std::fs::write(path, s).expect("write json");
        eprintln!("wrote {path}");
    }
    if let Some(path) = flags.get("kpis") {
        let report = out.kpis.report(&out.measurements);
        let s = serde_json::to_string_pretty(&report).expect("serialize kpis");
        std::fs::write(path, s).expect("write kpis");
        eprintln!("wrote {path}");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flags = parse_flags(&args);
    install_sigterm();
    let params = params_of(&flags);
    let scenario = Scenario::build(params);
    let owned_oracle = sim_oracle(&scenario);
    let oracle = owned_oracle.as_dyn();
    let algo = flags
        .get("algo")
        .map(|s| s.as_str())
        .unwrap_or("online")
        .to_string();
    match algo.as_str() {
        "online" => serve(&scenario, &flags, &algo, oracle, || {
            WatterDispatcher::new(watter_config(&scenario), OnlinePolicy)
        }),
        "timeout" => serve(&scenario, &flags, &algo, oracle, || {
            WatterDispatcher::new(
                watter_config(&scenario),
                TimeoutPolicy {
                    check_period: scenario.params.check_period,
                },
            )
        }),
        "nonshare" => serve(&scenario, &flags, &algo, oracle, NonSharingDispatcher::new),
        other => {
            eprintln!("unknown algo `{other}` (daemon supports online|timeout|nonshare)");
            std::process::exit(2);
        }
    }
}
