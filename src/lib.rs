//! # WATTER — Wait to be Faster
//!
//! A Rust reproduction of *"Wait to be Faster: A Smart Pooling Framework
//! for Dynamic Ridesharing"* (ICDE 2024). This facade crate re-exports the
//! whole workspace and provides the end-to-end [`pipeline`] (history
//! collection → GMM fitting → experience generation → value-function
//! training) and the [`runner`] used by examples, integration tests and
//! the experiment harness.
//!
//! ## Quick start
//!
//! ```
//! use watter::prelude::*;
//!
//! // A small synthetic Chengdu-like scenario.
//! let mut params = ScenarioParams::default_for(CityProfile::Chengdu);
//! params.n_orders = 120;
//! params.n_workers = 15;
//! params.city_side = 10;
//! let scenario = Scenario::build(params);
//!
//! // Run the pooling framework with the online policy.
//! let stats = watter::runner::run_algorithm(&scenario, watter::runner::Algo::WatterOnline);
//! assert!(stats.service_rate_pct > 0.0);
//! ```

pub use watter_baselines as baselines;
pub use watter_core as core;
pub use watter_learn as learn;
pub use watter_obs as obs;
pub use watter_pool as pool;
pub use watter_road as road;
pub use watter_sim as sim;
pub use watter_strategy as strategy;
pub use watter_workload as workload;

pub mod chaos;
pub mod cli;
pub mod pipeline;
pub mod runner;

/// Convenient glob-import surface for examples and tests.
pub mod prelude {
    pub use crate::pipeline::{train, TrainedWatter, TrainingConfig};
    pub use crate::runner::{run_algorithm, run_full, Algo, DriveMode, RunOutput};
    pub use watter_core::{
        CostWeights, Dist, Group, KpiReport, Kpis, Measurements, OracleKind, Order, RunStats,
        TravelCost, Worker,
    };
    pub use watter_learn::{Gmm, GmmThresholdProvider, ValueFunction};
    pub use watter_obs::{ObsSnapshot, Recorder, TraceEvent, TraceRecord};
    pub use watter_road::{AltOracle, CityConfig, CityOracle, CostMatrix, GridIndex, RoadGraph};
    pub use watter_sim::{
        DispatchCore, DispatchSnapshot, Dispatcher, Effect, Event, IngestConfig, IngestStats,
        OrderIngest, SimConfig, SnapshotDispatcher, WatterConfig, WatterDispatcher,
    };
    pub use watter_strategy::{
        ConstantThreshold, DecisionPolicy, OnlinePolicy, ThresholdPolicy, TimeoutPolicy,
    };
    pub use watter_workload::{CityProfile, Scenario, ScenarioParams};
}
